//! Human-readable rendering.
//!
//! "Rules can also be translated into human-readable descriptions for
//! workers' consumption" (§3.3.2). Each compiled rule becomes an English
//! sentence; a policy becomes a titled bullet list.

use crate::sema::{CompiledCondition, CompiledPolicy, CompiledRule, Context, Requirement};
use faircrowd_model::disclosure::{Audience, DisclosureItem};
use std::fmt::Write as _;

/// English noun phrase for a disclosure item.
pub fn item_phrase(item: DisclosureItem) -> &'static str {
    match item {
        DisclosureItem::HourlyWage => "the expected hourly wage of each task",
        DisclosureItem::PaymentDelay => "how long payment takes after submission",
        DisclosureItem::RecruitmentCriteria => "who may work on each task",
        DisclosureItem::RejectionCriteria => "the conditions under which work is rejected",
        DisclosureItem::EvaluationScheme => "how contributions are evaluated",
        DisclosureItem::WorkerAcceptanceRatio => "their own acceptance ratio",
        DisclosureItem::WorkerQualityEstimate => "their own estimated accuracy",
        DisclosureItem::WorkerHistory => "their own submission history",
        DisclosureItem::WorkerApprovalLatency => "how quickly their work gets judged",
        DisclosureItem::WorkerEarnings => "their own lifetime earnings",
        DisclosureItem::WorkerSessions => "their own session history",
        DisclosureItem::RequesterRating => "the community rating of each requester",
        DisclosureItem::TaskRating => "the community rating of each task",
        DisclosureItem::AutoApprovalTime => "the time until automatic approval",
        DisclosureItem::CampaignProgress => "live progress of their own campaigns",
    }
}

/// English subject phrase for an audience.
pub fn audience_phrase(audience: Audience) -> &'static str {
    match audience {
        Audience::Public => "Anyone",
        Audience::Workers => "Workers",
        Audience::Requesters => "Requesters",
        Audience::Subject => "Each worker",
    }
}

/// English adverbial for a context.
pub fn context_phrase(ctx: Context) -> &'static str {
    match ctx {
        Context::Browsing => "while browsing tasks",
        Context::Accepting => "when accepting a task",
        Context::Working => "while working on a task",
        Context::Posting => "when a task is posted",
        Context::Payment => "around payment time",
        Context::SessionStart => "at the start of each session",
    }
}

/// Render one disclose rule as a sentence.
pub fn render_rule(rule: &CompiledRule) -> String {
    let who = audience_phrase(rule.audience);
    let what = item_phrase(rule.item);
    match rule.condition {
        CompiledCondition::Always => format!("{who} can see {what}."),
        CompiledCondition::When(ctx) => {
            format!("{who} can see {what} {}.", context_phrase(ctx))
        }
    }
}

/// Render one requirement as a sentence.
pub fn render_requirement(req: &Requirement) -> String {
    let what = item_phrase(req.item);
    match req.before {
        Some(ctx) => format!(
            "Requesters must publish {what} {}.",
            context_phrase(ctx).replace("when a task is posted", "before posting a task")
        ),
        None => format!("Requesters must publish {what}."),
    }
}

/// Render a whole policy as a titled bullet list.
pub fn render_policy(policy: &CompiledPolicy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Transparency policy \"{}\":", policy.name);
    if policy.rules.is_empty() && policy.requirements.is_empty() {
        let _ = writeln!(out, "  (discloses nothing)");
        return out;
    }
    for rule in &policy.rules {
        let _ = writeln!(out, "  - {}", render_rule(rule));
    }
    for req in &policy.requirements {
        let _ = writeln!(out, "  - {}", render_requirement(req));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_one;

    #[test]
    fn renders_sentences() {
        let p = compile_one(
            r#"
            policy "demo" {
                disclose task.rating to public when browsing;
                disclose worker.acceptance_ratio to subject always;
                require requester discloses rejection_criteria before posting;
            }
            "#,
        )
        .unwrap();
        let text = render_policy(&p);
        assert!(text.contains("Transparency policy \"demo\""));
        assert!(
            text.contains("Anyone can see the community rating of each task while browsing tasks.")
        );
        assert!(text.contains("Each worker can see their own acceptance ratio."));
        assert!(text.contains(
            "Requesters must publish the conditions under which work is rejected before \
             posting a task."
        ));
    }

    #[test]
    fn empty_policy_renders_gracefully() {
        let p = CompiledPolicy {
            name: "void".into(),
            rules: vec![],
            requirements: vec![],
        };
        assert!(render_policy(&p).contains("discloses nothing"));
    }

    #[test]
    fn every_item_has_a_phrase() {
        for item in DisclosureItem::ALL {
            assert!(!item_phrase(item).is_empty());
        }
        for a in Audience::ALL {
            assert!(!audience_phrase(a).is_empty());
        }
        for c in Context::ALL {
            assert!(!context_phrase(c).is_empty());
        }
    }

    #[test]
    fn requirement_without_phase() {
        let p = compile_one(r#"policy "p" { require requester discloses hourly_wage; }"#).unwrap();
        let text = render_requirement(&p.requirements[0]);
        assert_eq!(
            text,
            "Requesters must publish the expected hourly wage of each task."
        );
    }
}
