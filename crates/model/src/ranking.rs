//! Ranked-list comparison.
//!
//! Axiom 3 suggests that "for ranked lists, using measures such as
//! Discounted Cumulative Gain would be more appropriate", citing
//! Järvelin & Kekäläinen (TOIS 2002). This module implements DCG/nDCG and
//! Kendall's tau, plus the symmetric ranking similarity used for
//! contribution comparison.

/// Discounted Cumulative Gain of a relevance sequence (already in rank
/// order, best-first). Uses the standard log-discount formulation
/// `DCG = Σ_{i≥1} rel_i / log2(i + 1)` with 1-based rank `i`, so the
/// discount is active from rank 2 onward.
pub fn dcg(relevances: &[f64]) -> f64 {
    relevances
        .iter()
        .enumerate()
        .map(|(i, &rel)| rel / ((i as f64 + 2.0).log2()))
        .sum()
}

/// Normalised DCG of a ranking against per-item relevance scores.
///
/// `ranking` lists item indices best-first; `relevance[item]` is the item's
/// graded relevance. Returns `DCG(ranking) / DCG(ideal)` in `[0, 1]`
/// (1.0 when the ideal DCG is zero — there is nothing to get wrong).
/// Items out of range contribute zero relevance.
pub fn ndcg(ranking: &[u16], relevance: &[f64]) -> f64 {
    let gains: Vec<f64> = ranking
        .iter()
        .map(|&item| relevance.get(item as usize).copied().unwrap_or(0.0))
        .collect();
    let mut ideal: Vec<f64> = relevance.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).expect("relevance must not be NaN"));
    ideal.truncate(ranking.len());
    let ideal_dcg = dcg(&ideal);
    if ideal_dcg == 0.0 {
        return 1.0;
    }
    (dcg(&gains) / ideal_dcg).clamp(0.0, 1.0)
}

/// Kendall's tau-a between two rankings of the same item set, in `[-1, 1]`.
///
/// Both slices list item indices best-first and must rank the same items;
/// items present in only one ranking are ignored. Returns 1.0 for fewer
/// than two common items (no discordant information).
pub fn kendall_tau(a: &[u16], b: &[u16]) -> f64 {
    // position of each item in each ranking
    let pos = |r: &[u16]| -> std::collections::HashMap<u16, usize> {
        r.iter().enumerate().map(|(i, &x)| (x, i)).collect()
    };
    let pa = pos(a);
    let pb = pos(b);
    let common: Vec<u16> = a.iter().copied().filter(|x| pb.contains_key(x)).collect();
    let n = common.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (x, y) = (common[i], common[j]);
            let da = pa[&x] as i64 - pa[&y] as i64;
            let db = pb[&x] as i64 - pb[&y] as i64;
            if da * db > 0 {
                concordant += 1;
            } else if da * db < 0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Symmetric similarity in `[0, 1]` between two ranked-list contributions.
///
/// Treats each ranking as the "relevance truth" for the other (positional
/// gain `n - rank`), computes nDCG both ways and averages; identical
/// rankings score 1.0, reversed rankings score low. This symmetrisation is
/// what Axiom 3 needs: neither worker's list is privileged.
pub fn ranking_similarity(a: &[u16], b: &[u16]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let rel_from = |r: &[u16]| -> Vec<f64> {
        let max_item = r.iter().copied().max().unwrap_or(0) as usize;
        let mut rel = vec![0.0; max_item + 1];
        let n = r.len() as f64;
        for (rank, &item) in r.iter().enumerate() {
            rel[item as usize] = n - rank as f64;
        }
        rel
    };
    let ab = ndcg(a, &rel_from(b));
    let ba = ndcg(b, &rel_from(a));
    ((ab + ba) / 2.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcg_classic_example() {
        // Järvelin & Kekäläinen style: graded relevances in rank order
        let rels = [3.0, 2.0, 3.0, 0.0, 1.0, 2.0];
        let d = dcg(&rels);
        // hand computation with rank-i discount log2(i+1), 1-based i
        let expect = 3.0 / 2f64.log2()
            + 2.0 / 3f64.log2()
            + 3.0 / 4f64.log2()
            + 0.0 / 5f64.log2()
            + 1.0 / 6f64.log2()
            + 2.0 / 7f64.log2();
        assert!((d - expect).abs() < 1e-12);
    }

    #[test]
    fn dcg_is_order_sensitive() {
        assert!(dcg(&[3.0, 1.0]) > dcg(&[1.0, 3.0]));
        assert_eq!(dcg(&[]), 0.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        let rel = [0.0, 1.0, 2.0, 3.0];
        // best-first ranking by relevance: items 3,2,1,0
        assert!((ndcg(&[3, 2, 1, 0], &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_worst_ranking_below_one() {
        let rel = [0.0, 1.0, 2.0, 3.0];
        let worst = ndcg(&[0, 1, 2, 3], &rel);
        assert!(worst < 1.0 && worst > 0.0);
    }

    #[test]
    fn ndcg_handles_zero_ideal_and_oob_items() {
        assert_eq!(ndcg(&[0, 1], &[0.0, 0.0]), 1.0);
        // out-of-range items contribute nothing
        let rel = [1.0];
        assert!((ndcg(&[0, 9], &rel) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert!((kendall_tau(&[0, 1, 2, 3], &[0, 1, 2, 3]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[0, 1, 2, 3], &[3, 2, 1, 0]) + 1.0).abs() < 1e-12);
        // single swap of adjacent items: 5 of 6 pairs concordant
        let t = kendall_tau(&[0, 1, 2, 3], &[1, 0, 2, 3]);
        assert!((t - (5.0 - 1.0) / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_partial_overlap() {
        // only items 0 and 1 are common; ordered the same way
        assert_eq!(kendall_tau(&[0, 1, 7], &[0, 1, 9]), 1.0);
        // fewer than two common items
        assert_eq!(kendall_tau(&[0], &[1]), 1.0);
    }

    #[test]
    fn ranking_similarity_properties() {
        let a: Vec<u16> = vec![0, 1, 2, 3, 4];
        let rev: Vec<u16> = vec![4, 3, 2, 1, 0];
        let near: Vec<u16> = vec![0, 1, 2, 4, 3];
        assert!((ranking_similarity(&a, &a) - 1.0).abs() < 1e-9);
        let s_near = ranking_similarity(&a, &near);
        let s_rev = ranking_similarity(&a, &rev);
        assert!(s_near > s_rev, "{s_near} vs {s_rev}");
        // symmetry
        assert!((ranking_similarity(&a, &near) - ranking_similarity(&near, &a)).abs() < 1e-12);
        // empties
        assert_eq!(ranking_similarity(&[], &[]), 1.0);
        assert_eq!(ranking_similarity(&a, &[]), 0.0);
    }
}
