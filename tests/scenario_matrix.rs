//! Scenario matrix: every policy × cancellation × payment combination
//! must produce well-formed traces with bounded audit scores and a
//! conserving money flow. This is the broad-coverage safety net for the
//! simulator's interaction surface, driven through the `Pipeline` and
//! the policy registry.

use faircrowd::assign::registry;
use faircrowd::core::metrics;
use faircrowd::prelude::*;

fn tiny(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rounds: 16,
        n_skills: 3,
        workers: vec![WorkerPopulation::diligent(10)],
        campaigns: vec![CampaignSpec {
            target_approved: Some(20),
            ..CampaignSpec::labeling("acme", 20, 8)
        }],
        ..Default::default()
    }
}

fn policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::SelfSelection,
        PolicyChoice::RoundRobin,
        PolicyChoice::RequesterCentric,
        PolicyChoice::OnlineGreedy,
        PolicyChoice::WorkerCentric,
        PolicyChoice::Kos { l: 2, r: 3 },
        PolicyChoice::ParityOver(Box::new(PolicyChoice::OnlineGreedy)),
        PolicyChoice::FloorOver(Box::new(PolicyChoice::RequesterCentric), 3),
    ]
}

#[test]
fn every_policy_produces_a_valid_trace() {
    // Explicit `PolicyChoice` values (parameterised kos/parity/floor)…
    for policy in policies() {
        let result = Pipeline::new()
            .scenario(tiny(1))
            .policy(policy.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", policy.label()));
        // run() validated the trace; the market must also move.
        assert!(
            !result.baseline.trace.submissions.is_empty(),
            "{}: market must move",
            policy.label()
        );
    }
    // …and every registry name, resolved by string like the CLI does.
    for name in registry::NAMES {
        let result = Pipeline::new()
            .scenario(tiny(1))
            .policy_name(name)
            .and_then(Pipeline::run)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!result.baseline.trace.submissions.is_empty(), "{name}");
    }
}

#[test]
fn every_cancellation_policy_is_sound() {
    let cancellations = [
        CancellationPolicy::RunToCompletion,
        CancellationPolicy::CancelAtTarget {
            compensate_partial: false,
        },
        CancellationPolicy::CancelAtTarget {
            compensate_partial: true,
        },
        CancellationPolicy::GraceFinish,
    ];
    for cancellation in cancellations {
        let result = Pipeline::new()
            .scenario(tiny(2))
            .configure(|c| c.cancellation = cancellation)
            .run()
            .unwrap_or_else(|e| panic!("{cancellation:?}: {e}"));
        for axiom in &result.baseline.report.axioms {
            assert!(
                (0.0..=1.0).contains(&axiom.score),
                "{cancellation:?} {}: {}",
                axiom.axiom,
                axiom.score
            );
        }
    }
}

#[test]
fn every_payment_scheme_conserves_money() {
    let schemes = [
        PaymentSchemeChoice::Fixed,
        PaymentSchemeChoice::QualityBased {
            floor: 0.5,
            full_quality: 0.9,
        },
        PaymentSchemeChoice::QualityBased {
            floor: 0.0,
            full_quality: 1.0,
        },
    ];
    for payment in schemes {
        let result = Pipeline::new()
            .scenario(tiny(3))
            .configure(|c| c.payment = payment)
            .run()
            .unwrap_or_else(|e| panic!("{payment:?}: {e}"));
        let trace = &result.baseline.trace;
        // Sum of per-worker earnings equals total payout; no negative pay.
        let earnings = trace.earnings_by_worker();
        let total: faircrowd::model::Credits = earnings.values().copied().sum();
        assert_eq!(
            total,
            metrics::total_payout(&faircrowd::core::TraceIndex::new(trace)),
            "{payment:?}"
        );
        assert!(earnings.values().all(|c| c.millicents() >= 0));
        // Nobody earns more than reward × their submissions (+ partial
        // compensations, absent here under RunToCompletion target runs).
        for (w, earned) in &earnings {
            let subs = trace.submissions.iter().filter(|s| s.worker == *w).count();
            let cap = faircrowd::model::Credits::from_cents(8).mul_int(subs as i64 + 1);
            assert!(
                earned <= &cap,
                "{payment:?}: {w} earned {earned} for {subs} subs"
            );
        }
    }
}

#[test]
fn approval_policies_cover_the_spectrum() {
    let approvals = [
        ApprovalPolicy::LenientAll,
        ApprovalPolicy::QualityThreshold {
            threshold: 0.5,
            noise: 0.1,
            give_feedback: true,
        },
        ApprovalPolicy::RandomReject {
            reject_prob: 0.9,
            give_feedback: false,
        },
    ];
    let mut rates = Vec::new();
    for approval in approvals {
        let result = Pipeline::new()
            .scenario(tiny(4))
            .configure(|c| c.approval = approval)
            .run()
            .unwrap_or_else(|e| panic!("{approval:?}: {e}"));
        rates.push(result.baseline.summary.approval_rate);
    }
    assert!((rates[0] - 1.0).abs() < 1e-12, "lenient approves all");
    assert!(rates[1] > 0.6, "fair approval mostly approves good work");
    assert!(rates[2] < 0.3, "p=.9 rejection rejects most work");
}

#[test]
fn mixed_task_kinds_flow_through_the_whole_stack() {
    use faircrowd::model::task::TaskKind;
    let mut cfg = tiny(5);
    cfg.campaigns = vec![
        CampaignSpec {
            kind: TaskKind::Labeling { classes: 4 },
            ..CampaignSpec::labeling("multi", 10, 8)
        },
        CampaignSpec {
            kind: TaskKind::FreeText,
            ..CampaignSpec::labeling("texts", 10, 12)
        },
        CampaignSpec {
            kind: TaskKind::Ranking { items: 6 },
            ..CampaignSpec::labeling("ranks", 10, 15)
        },
        CampaignSpec {
            kind: TaskKind::Survey,
            ..CampaignSpec::labeling("polls", 10, 5)
        },
    ];
    let result = Pipeline::new()
        .scenario(cfg)
        .run()
        .expect("mixed-kind market runs");
    // all four contribution kinds appear
    let kinds: std::collections::BTreeSet<&'static str> = result
        .baseline
        .trace
        .submissions
        .iter()
        .map(|s| s.contribution.kind_name())
        .collect();
    assert!(kinds.contains("label"));
    assert!(kinds.contains("text"));
    assert!(kinds.contains("ranking"));
    // and the audit came back with it
    assert!((0.0..=1.0).contains(&result.baseline.report.overall_score()));
}
