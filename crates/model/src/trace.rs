//! Platform traces.
//!
//! A [`Trace`] is the complete observable record of a platform run: the
//! entity tables (workers, tasks, requesters) in their final state, every
//! submission, the audit [`EventLog`], the [`DisclosureSet`] the platform
//! operated under, and — for *evaluation only* — the simulator's ground
//! truth. The audit engine in `faircrowd-core` consumes traces; the
//! simulator in `faircrowd-sim` produces them; hand-built traces drive the
//! axiom unit tests.

use crate::arena::DenseIdMap;
use crate::contribution::Submission;
use crate::disclosure::DisclosureSet;
use crate::event::{Event, EventKind, EventLog, QuitReason};
use crate::ids::{RequesterId, SubmissionId, TaskId, WorkerId};
use crate::money::Credits;
use crate::requester::Requester;
use crate::task::Task;
use crate::time::{SimDuration, SimTime};
use crate::worker::Worker;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Evaluation-only ground truth carried alongside a trace.
///
/// A real platform does not know which workers are malicious or what the
/// true labels are; the simulator does, and experiments use this to score
/// detector precision/recall (E3) and contribution quality (E6). Axiom
/// checkers never read it except where the experiment explicitly evaluates
/// detection effectiveness.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Workers that behaved maliciously by construction.
    pub malicious_workers: BTreeSet<WorkerId>,
    /// True labels for labeling tasks.
    pub true_labels: BTreeMap<TaskId, u8>,
}

/// One `WorkInterrupted` audit event, in log order — the Axiom 5 witness
/// record kept by [`EventIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interruption {
    /// The cancelled task.
    pub task: TaskId,
    /// The interrupted worker.
    pub worker: WorkerId,
    /// Time the worker had already invested.
    pub invested: SimDuration,
    /// Whether the partial work was compensated.
    pub compensated: bool,
}

/// Every event-derived structure the audit layer quantifies over, built
/// in **one pass** over the [`EventLog`] by [`Trace::event_index`].
///
/// The individual [`Trace`] accessors (`visibility_map`,
/// `audience_map`, …) delegate here, and `faircrowd-core`'s `TraceIndex`
/// embeds one so the seven axiom checkers and the objective metrics all
/// share a single replay of the log instead of re-deriving their own
/// maps.
/// The entity-keyed tables are [`DenseIdMap`] arenas, not tree maps:
/// the audit hot paths probe them once per event, and the dense integer
/// ids make that an array index instead of a hash or pointer chase.
/// Iteration stays in ascending id order, so everything downstream that
/// encodes or renders from the index is byte-identical to the tree-map
/// form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventIndex {
    /// Per worker, the tasks made visible to her (Axiom 1 access sets).
    /// Every known worker appears, even with an empty set — "no access
    /// at all" is the strongest discrimination signal.
    pub visibility: DenseIdMap<WorkerId, BTreeSet<TaskId>>,
    /// Per task, the workers it was shown to (the Axiom 2 inversion).
    pub audience: DenseIdMap<TaskId, BTreeSet<WorkerId>>,
    /// Total amount actually paid per submission (Axiom 3).
    pub payments: DenseIdMap<SubmissionId, Credits>,
    /// Total earnings per worker: payments plus honoured bonuses. Every
    /// known worker appears, possibly at zero.
    pub earnings: DenseIdMap<WorkerId, Credits>,
    /// Workers flagged by any detector (Axiom 4).
    pub flagged: BTreeSet<WorkerId>,
    /// Workers who had at least one session (Axiom 7, retention).
    pub session_workers: BTreeSet<WorkerId>,
    /// Workers who were shown at least one disclosure (Axiom 7).
    pub informed_workers: BTreeSet<WorkerId>,
    /// Number of `WorkStarted` events (the Axiom 5 quantifier domain).
    pub work_started: usize,
    /// Every interruption, in log order (Axiom 5 witnesses).
    pub interruptions: Vec<Interruption>,
    /// Workers who quit, with reasons, in log order.
    pub quits: Vec<(WorkerId, QuitReason, SimTime)>,
}

/// The complete observable record of a platform run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workers in their end-of-run state.
    pub workers: Vec<Worker>,
    /// All tasks ever posted.
    pub tasks: Vec<Task>,
    /// Requesters in their end-of-run state.
    pub requesters: Vec<Requester>,
    /// Every submission received.
    pub submissions: Vec<Submission>,
    /// The audit log.
    pub events: EventLog,
    /// The disclosure configuration the platform ran under.
    pub disclosure: DisclosureSet,
    /// Simulation end time.
    pub horizon: SimTime,
    /// Evaluation-only ground truth.
    pub ground_truth: GroundTruth,
}

impl Trace {
    /// Look up a worker by id.
    pub fn worker(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.iter().find(|w| w.id == id)
    }

    /// Look up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Look up a requester by id.
    pub fn requester(&self, id: RequesterId) -> Option<&Requester> {
        self.requesters.iter().find(|r| r.id == id)
    }

    /// Look up a submission by id.
    pub fn submission(&self, id: SubmissionId) -> Option<&Submission> {
        self.submissions.iter().find(|s| s.id == id)
    }

    /// Build every event-derived structure in one pass over the log —
    /// the shared builder the per-map accessors below delegate to.
    pub fn event_index(&self) -> EventIndex {
        let mut ix = EventIndex::default();
        for w in &self.workers {
            ix.visibility.entry(w.id);
            ix.earnings.entry(w.id);
        }
        for t in &self.tasks {
            ix.audience.entry(t.id);
        }
        for e in &self.events {
            match &e.kind {
                EventKind::TaskVisible { task, worker } => {
                    ix.visibility.entry(*worker).insert(*task);
                    ix.audience.entry(*task).insert(*worker);
                }
                EventKind::PaymentIssued {
                    submission,
                    worker,
                    amount,
                    ..
                } => {
                    *ix.payments.entry(*submission) += *amount;
                    *ix.earnings.entry(*worker) += *amount;
                }
                EventKind::BonusPaid { worker, amount, .. } => {
                    *ix.earnings.entry(*worker) += *amount;
                }
                EventKind::WorkerFlagged { worker, .. } => {
                    ix.flagged.insert(*worker);
                }
                EventKind::SessionStarted { worker } => {
                    ix.session_workers.insert(*worker);
                }
                EventKind::DisclosureShown { worker, .. } => {
                    ix.informed_workers.insert(*worker);
                }
                EventKind::WorkStarted { .. } => ix.work_started += 1,
                EventKind::WorkInterrupted {
                    task,
                    worker,
                    invested,
                    compensated,
                } => ix.interruptions.push(Interruption {
                    task: *task,
                    worker: *worker,
                    invested: *invested,
                    compensated: *compensated,
                }),
                EventKind::WorkerQuit { worker, reason } => {
                    ix.quits.push((*worker, *reason, e.time));
                }
                _ => {}
            }
        }
        ix
    }

    /// The access map Axioms 1–2 quantify over: for every worker, the set
    /// of tasks the platform made visible to her.
    pub fn visibility_map(&self) -> BTreeMap<WorkerId, BTreeSet<TaskId>> {
        self.event_index().visibility.to_btree_map()
    }

    /// For every task, the set of workers it was shown to (the Axiom 2
    /// view of the same events).
    pub fn audience_map(&self) -> BTreeMap<TaskId, BTreeSet<WorkerId>> {
        self.event_index().audience.to_btree_map()
    }

    /// Total amount actually paid per submission.
    pub fn payment_by_submission(&self) -> BTreeMap<SubmissionId, Credits> {
        self.event_index().payments.to_btree_map()
    }

    /// Total earnings per worker (payments plus honoured bonuses).
    pub fn earnings_by_worker(&self) -> BTreeMap<WorkerId, Credits> {
        self.event_index().earnings.to_btree_map()
    }

    /// Submissions grouped by task, in submission order.
    pub fn submissions_by_task(&self) -> BTreeMap<TaskId, Vec<&Submission>> {
        let mut map: BTreeMap<TaskId, Vec<&Submission>> = BTreeMap::new();
        for s in &self.submissions {
            map.entry(s.task).or_default().push(s);
        }
        map
    }

    /// Events of one kind, via a filter-map projection.
    pub fn events_where<'a, T, F>(&'a self, f: F) -> Vec<T>
    where
        F: Fn(&'a Event) -> Option<T> + 'a,
    {
        self.events.iter().filter_map(f).collect()
    }

    /// Workers who quit, with reasons.
    pub fn quits(&self) -> Vec<(WorkerId, crate::event::QuitReason, SimTime)> {
        self.events_where(|e| match e.kind {
            EventKind::WorkerQuit { worker, reason } => Some((worker, reason, e.time)),
            _ => None,
        })
    }

    /// Internal consistency checks a well-formed trace must satisfy:
    /// log integrity, submissions referencing known workers/tasks, and
    /// payment events referencing known submissions. Returns a list of
    /// human-readable problems (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if let Err(defect) = self.events.validate() {
            problems.push(format!(
                "event log integrity violated at index {}: {defect}",
                defect.index()
            ));
        }
        let worker_ids: BTreeSet<WorkerId> = self.workers.iter().map(|w| w.id).collect();
        let task_ids: BTreeSet<TaskId> = self.tasks.iter().map(|t| t.id).collect();
        let sub_ids: BTreeSet<SubmissionId> = self.submissions.iter().map(|s| s.id).collect();
        for s in &self.submissions {
            if !worker_ids.contains(&s.worker) {
                problems.push(format!(
                    "submission {} from unknown worker {}",
                    s.id, s.worker
                ));
            }
            if !task_ids.contains(&s.task) {
                problems.push(format!("submission {} for unknown task {}", s.id, s.task));
            }
            if s.submitted_at < s.started_at {
                problems.push(format!("submission {} finishes before it starts", s.id));
            }
        }
        for e in &self.events {
            if let EventKind::PaymentIssued { submission, .. } = e.kind {
                if !sub_ids.contains(&submission) {
                    problems.push(format!("payment for unknown submission {submission}"));
                }
            }
        }
        problems
    }

    /// [`Trace::validate`] as a `Result`: `Ok` for a well-formed trace,
    /// [`crate::error::FaircrowdError::InvalidTrace`] carrying the
    /// problems otherwise.
    pub fn ensure_valid(&self) -> Result<(), crate::error::FaircrowdError> {
        let problems = self.validate();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(crate::error::FaircrowdError::InvalidTrace { problems })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::DeclaredAttrs;
    use crate::contribution::Contribution;
    use crate::skills::SkillVector;
    use crate::task::TaskBuilder;

    fn tiny_trace() -> Trace {
        let mut trace = Trace::default();
        let w0 = Worker::new(
            WorkerId::new(0),
            DeclaredAttrs::new(),
            SkillVector::with_len(2),
        );
        let w1 = Worker::new(
            WorkerId::new(1),
            DeclaredAttrs::new(),
            SkillVector::with_len(2),
        );
        trace.workers = vec![w0, w1];
        trace.tasks = vec![TaskBuilder::new(
            TaskId::new(0),
            RequesterId::new(0),
            SkillVector::with_len(2),
            Credits::from_cents(10),
        )
        .build()];
        trace.requesters = vec![Requester::new(RequesterId::new(0), "acme")];
        trace.submissions = vec![Submission {
            id: SubmissionId::new(0),
            task: TaskId::new(0),
            worker: WorkerId::new(0),
            contribution: Contribution::Label(1),
            started_at: SimTime::from_secs(10),
            submitted_at: SimTime::from_secs(70),
        }];
        trace.events.push(
            SimTime::from_secs(0),
            EventKind::TaskPosted {
                task: TaskId::new(0),
                requester: RequesterId::new(0),
            },
        );
        trace.events.push(
            SimTime::from_secs(1),
            EventKind::TaskVisible {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
        );
        trace.events.push(
            SimTime::from_secs(80),
            EventKind::PaymentIssued {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_cents(10),
            },
        );
        trace.horizon = SimTime::from_secs(100);
        trace
    }

    #[test]
    fn visibility_map_includes_unexposed_workers() {
        let trace = tiny_trace();
        let vis = trace.visibility_map();
        assert_eq!(vis.len(), 2);
        assert_eq!(vis[&WorkerId::new(0)].len(), 1);
        assert!(vis[&WorkerId::new(1)].is_empty(), "w1 saw nothing");
    }

    #[test]
    fn audience_map_inverts_visibility() {
        let trace = tiny_trace();
        let aud = trace.audience_map();
        assert!(aud[&TaskId::new(0)].contains(&WorkerId::new(0)));
        assert!(!aud[&TaskId::new(0)].contains(&WorkerId::new(1)));
    }

    #[test]
    fn payments_aggregate() {
        let trace = tiny_trace();
        let pay = trace.payment_by_submission();
        assert_eq!(pay[&SubmissionId::new(0)], Credits::from_cents(10));
        let earn = trace.earnings_by_worker();
        assert_eq!(earn[&WorkerId::new(0)], Credits::from_cents(10));
        assert_eq!(earn[&WorkerId::new(1)], Credits::ZERO);
    }

    #[test]
    fn lookups_work() {
        let trace = tiny_trace();
        assert!(trace.worker(WorkerId::new(1)).is_some());
        assert!(trace.worker(WorkerId::new(9)).is_none());
        assert!(trace.task(TaskId::new(0)).is_some());
        assert!(trace.requester(RequesterId::new(0)).is_some());
        assert!(trace.submission(SubmissionId::new(0)).is_some());
    }

    #[test]
    fn valid_trace_validates() {
        assert!(tiny_trace().validate().is_empty());
    }

    #[test]
    fn validation_catches_dangling_references() {
        let mut trace = tiny_trace();
        trace.submissions.push(Submission {
            id: SubmissionId::new(9),
            task: TaskId::new(42),
            worker: WorkerId::new(42),
            contribution: Contribution::Label(0),
            started_at: SimTime::from_secs(5),
            submitted_at: SimTime::from_secs(2),
        });
        let problems = trace.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
    }

    #[test]
    fn validation_catches_payment_to_unknown_submission() {
        let mut trace = tiny_trace();
        trace.events.push(
            SimTime::from_secs(99),
            EventKind::PaymentIssued {
                submission: SubmissionId::new(77),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_cents(1),
            },
        );
        assert_eq!(trace.validate().len(), 1);
    }

    #[test]
    fn event_index_matches_individual_accessors() {
        let mut trace = tiny_trace();
        trace.events.push(
            SimTime::from_secs(81),
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
        );
        trace.events.push(
            SimTime::from_secs(82),
            EventKind::WorkStarted {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
        );
        trace.events.push(
            SimTime::from_secs(83),
            EventKind::WorkInterrupted {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                invested: crate::time::SimDuration::from_mins(2),
                compensated: false,
            },
        );
        let ix = trace.event_index();
        assert_eq!(ix.visibility.to_btree_map(), trace.visibility_map());
        assert_eq!(ix.audience.to_btree_map(), trace.audience_map());
        assert_eq!(ix.payments.to_btree_map(), trace.payment_by_submission());
        assert_eq!(ix.earnings.to_btree_map(), trace.earnings_by_worker());
        assert_eq!(ix.session_workers.len(), 1);
        assert_eq!(ix.work_started, 1);
        assert_eq!(ix.interruptions.len(), 1);
        assert!(!ix.interruptions[0].compensated);
        assert!(ix.flagged.is_empty());
    }

    #[test]
    fn submissions_by_task_groups() {
        let trace = tiny_trace();
        let by_task = trace.submissions_by_task();
        assert_eq!(by_task[&TaskId::new(0)].len(), 1);
    }
}
