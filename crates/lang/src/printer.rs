//! Canonical TPL pretty-printing.
//!
//! The paper's sharing story (§3.3.2 — "the declarative nature of those
//! rules will allow easy comparison across platforms") needs policies to
//! travel: a platform exports its policy, another tool re-imports it.
//! [`print_policy`] emits canonical TPL source for a compiled policy, and
//! the round-trip law `compile(print(p)) ≡ p` (same rules, same grants)
//! is enforced by property tests.

use crate::sema::{CompiledCondition, CompiledPolicy};
use std::fmt::Write as _;

/// Escape a policy name for a TPL string literal.
fn escape(name: &str) -> String {
    name.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Emit canonical TPL source for a compiled policy.
///
/// Canonical form: no audience definitions (built-in audience names are
/// used directly), one `disclose` line per rule in rule order, then one
/// `require` line per requirement; `always` conditions are implicit.
pub fn print_policy(policy: &CompiledPolicy) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "policy \"{}\" {{", escape(&policy.name));
    for rule in &policy.rules {
        let _ = write!(
            out,
            "    disclose {} to {}",
            rule.item.name(),
            rule.audience.name()
        );
        if let CompiledCondition::When(ctx) = rule.condition {
            let _ = write!(out, " when {}", ctx.name());
        }
        let _ = writeln!(out, ";");
    }
    for req in &policy.requirements {
        // `require` accepts the full dotted item name, so canonical form
        // uses it rather than the short aliases.
        let _ = write!(out, "    require requester discloses {}", req.item.name());
        if let Some(ctx) = req.before {
            let _ = write!(out, " before {}", ctx.name());
        }
        let _ = writeln!(out, ";");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::compile_one;

    #[test]
    fn roundtrip_preserves_catalog_policies() {
        for (name, source) in catalog::sources() {
            let original = compile_one(source).unwrap();
            let printed = print_policy(&original);
            let reparsed = compile_one(&printed)
                .unwrap_or_else(|e| panic!("printed `{name}` must re-compile:\n{printed}\n{e}"));
            assert_eq!(original.rules, reparsed.rules, "{name}: rules differ");
            assert_eq!(
                original.requirements, reparsed.requirements,
                "{name}: requirements differ"
            );
            assert_eq!(
                original.disclosure_set(),
                reparsed.disclosure_set(),
                "{name}: grants differ"
            );
        }
    }

    #[test]
    fn printing_is_canonical_fixed_point() {
        let p = compile_one(catalog::CROWDFLOWER).unwrap();
        let once = print_policy(&p);
        let twice = print_policy(&compile_one(&once).unwrap());
        assert_eq!(once, twice, "printing must be a fixed point");
    }

    #[test]
    fn escapes_hostile_names() {
        let mut p = compile_one(r#"policy "x" { disclose task.rating to public; }"#).unwrap();
        p.name = "evil \"quote\" \\slash".into();
        let printed = print_policy(&p);
        let reparsed = compile_one(&printed).unwrap();
        assert_eq!(reparsed.name, p.name);
    }

    #[test]
    fn always_condition_is_implicit() {
        let p = compile_one(r#"policy "p" { disclose task.rating to public always; }"#).unwrap();
        let printed = print_policy(&p);
        assert!(!printed.contains("always"), "{printed}");
        assert!(printed.contains("disclose task.rating to public;"));
    }

    #[test]
    fn when_condition_is_printed() {
        let p = compile_one(r#"policy "p" { disclose task.rating to workers when browsing; }"#)
            .unwrap();
        assert!(print_policy(&p).contains("to workers when browsing;"));
    }
}
