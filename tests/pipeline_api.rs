//! The `Pipeline` + registry API contract:
//!
//! 1. every registry name resolves and assigns feasibly on the shared
//!    fixture market;
//! 2. `Pipeline::run` is exactly the hand-wired `sim::run` +
//!    `AuditEngine::run` composition — same trace, same report;
//! 3. the unified `FaircrowdError` surfaces every failure mode.

use faircrowd::assign::policy::fixtures;
use faircrowd::assign::registry;
use faircrowd::model::FaircrowdError;
use faircrowd::prelude::*;

/// Satellite round-trip: name → registry → policy → feasible outcome.
#[test]
fn every_registry_name_assigns_feasibly_on_the_fixture_market() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let market = fixtures::small_market();
    for name in registry::NAMES {
        let mut policy = registry::by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let outcome = policy.assign(&market, &mut StdRng::seed_from_u64(42));
        outcome
            .ensure_feasible(&market, policy.name())
            .unwrap_or_else(|e| panic!("{e}"));
        // Policies must expose at least the tasks they assign.
        for (worker, task) in &outcome.assignments {
            assert!(
                outcome
                    .visibility
                    .get(worker)
                    .is_some_and(|v| v.contains(task)),
                "{name}: assignment implies visibility"
            );
        }
    }
}

/// The registry and the simulator's `PolicyChoice` table agree on names
/// AND on what each name builds: same policy identity, same behaviour on
/// the fixture market.
#[test]
fn registry_names_and_policy_choice_stay_in_sync() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let market = fixtures::small_market();
    for name in registry::NAMES {
        let mut from_registry = registry::by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let choice = PolicyChoice::by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut from_choice = choice.build();
        assert_eq!(
            from_registry.name(),
            from_choice.name(),
            "`{name}` resolves to different policies via registry vs PolicyChoice"
        );
        // Same construction parameters ⇒ identical outcomes on the same
        // market and seed (catches diverging kos/parity/floor defaults).
        let a = from_registry.assign(&market, &mut StdRng::seed_from_u64(3));
        let b = from_choice.assign(&market, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b, "`{name}` behaves differently via the two tables");
    }
    assert!(matches!(
        PolicyChoice::by_name("magic"),
        Err(FaircrowdError::UnknownPolicy { .. })
    ));
}

/// Pipeline output equals the hand-wired composition of the crates.
#[test]
fn pipeline_equals_hand_wired_composition() {
    let config = ScenarioConfig {
        seed: 99,
        rounds: 20,
        workers: vec![WorkerPopulation::diligent(12)],
        campaigns: vec![
            CampaignSpec::labeling("acme", 15, 10),
            CampaignSpec::labeling("globex", 15, 10),
        ],
        policy: PolicyChoice::by_name("round_robin").unwrap(),
        ..Default::default()
    };

    // Hand-wired: the pre-Pipeline composition every caller used to write.
    let trace = faircrowd::sim::run(config.clone());
    let report = AuditEngine::with_defaults().run(&trace);
    let summary = TraceSummary::of(&trace);

    // The same loop through the Pipeline.
    let result = Pipeline::new().scenario(config).run().unwrap();

    assert_eq!(result.baseline.trace, trace, "same trace");
    assert_eq!(result.baseline.report, report, "same report");
    assert_eq!(
        result.baseline.summary.submissions, summary.submissions,
        "same summary"
    );
    assert!(
        result.enforced.is_none(),
        "nothing staged, nothing enforced"
    );
}

/// With an enforcement staged, the second pass equals hand-wiring the
/// repaired config through the crates.
#[test]
fn enforced_pass_equals_hand_wired_repair() {
    let base = ScenarioConfig {
        seed: 5,
        rounds: 16,
        policy: PolicyChoice::RequesterCentric,
        ..Default::default()
    };

    let result = Pipeline::new()
        .scenario(base.clone())
        .enforce(Enforcement::ExposureParity)
        .run()
        .unwrap();

    let mut repaired = base;
    repaired.policy = PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric));
    let trace = faircrowd::sim::run(repaired);
    let report = AuditEngine::with_defaults().run(&trace);

    let enforced = result.enforced.expect("parity staged");
    assert_eq!(enforced.artifacts.trace, trace);
    assert_eq!(enforced.artifacts.report, report);
}

/// `sweep_policies` runs the identical scenario once per name, in order.
#[test]
fn sweep_covers_the_registry_in_order() {
    let results = Pipeline::new()
        .rounds(8)
        .sweep_policies(&registry::NAMES)
        .unwrap();
    assert_eq!(results.len(), registry::NAMES.len());
    for ((name, result), expected) in results.iter().zip(registry::NAMES) {
        assert_eq!(name, expected);
        assert_eq!(result.baseline.report.axioms.len(), 7);
    }
}

/// Every failure mode arrives as a typed `FaircrowdError`.
#[test]
fn error_paths_are_unified() {
    // Unknown registry name.
    let err = match registry::by_name("nope") {
        Err(err) => err,
        Ok(policy) => panic!("`nope` resolved to {}", policy.name()),
    };
    assert!(matches!(err, FaircrowdError::UnknownPolicy { .. }));
    assert!(err.to_string().contains("round_robin"));

    // Unknown name via the pipeline builder.
    assert!(matches!(
        Pipeline::new().policy_name("nope"),
        Err(FaircrowdError::UnknownPolicy { .. })
    ));

    // Invalid scenario.
    let err = Pipeline::new()
        .configure(|c| c.campaigns.clear())
        .run()
        .unwrap_err();
    assert!(matches!(err, FaircrowdError::Config { .. }));
    assert!(err.to_string().contains("campaign"));

    // TPL diagnostics convert via `?`.
    let lang_err: FaircrowdError = faircrowd::lang::compile("policy \"broken\" {")
        .unwrap_err()
        .into();
    assert!(matches!(lang_err, FaircrowdError::Lang { .. }));

    // Unknown TPL catalog entries.
    assert!(matches!(
        faircrowd::lang::catalog::get("nope"),
        Err(FaircrowdError::UnknownPolicy { .. })
    ));
}
