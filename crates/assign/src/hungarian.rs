//! Maximum-weight bipartite matching (Kuhn–Munkres).
//!
//! The exact-matching substrate used by the worker-centric policy. This is
//! the O(n³) potentials-and-augmenting-paths formulation of the Hungarian
//! algorithm, adapted to **maximise** total weight on a possibly
//! rectangular weight matrix. Unmatchable pairs are expressed with
//! `f64::NEG_INFINITY` and the algorithm leaves such rows unmatched rather
//! than taking a forbidden edge.

/// Result of a matching run.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// `row_to_col[r]` is the column matched to row `r`, if any.
    pub row_to_col: Vec<Option<usize>>,
    /// Total weight of the matching (excluding unmatched rows).
    pub total: f64,
}

/// Maximum-weight assignment on an `n_rows × n_cols` weight matrix
/// (`weights[r][c]`). Every finite-weight edge is eligible; entries of
/// `f64::NEG_INFINITY` are forbidden. Rows/columns in excess stay
/// unmatched. Weights may be negative; a negative-weight match is still
/// taken if the row could otherwise not be matched — callers who want
/// "skip rather than lose money" should clamp negatives to forbidden.
pub fn max_weight_matching(weights: &[Vec<f64>]) -> Matching {
    let n_rows = weights.len();
    let n_cols = weights.first().map_or(0, Vec::len);
    debug_assert!(
        weights.iter().all(|row| row.len() == n_cols),
        "ragged weight matrix"
    );
    if n_rows == 0 || n_cols == 0 {
        return Matching {
            row_to_col: vec![None; n_rows],
            total: 0.0,
        };
    }

    // Square the matrix with padding; padded cells get weight 0 (matching
    // to a padded column = staying unmatched at no gain/loss). Forbidden
    // real cells keep NEG_INFINITY.
    let n = n_rows.max(n_cols);
    let big_forbidden = f64::NEG_INFINITY;
    let cost = |r: usize, c: usize| -> f64 {
        if r < n_rows && c < n_cols {
            weights[r][c]
        } else {
            0.0
        }
    };

    // Kuhn–Munkres with potentials, minimisation form on negated weights.
    // u[r], v[c] potentials; match_col[c] = row matched to column c.
    // Index 0 is a virtual root; internal arrays are 1-based.
    let inf = f64::INFINITY;
    let neg = |r: usize, c: usize| -> f64 {
        let w = cost(r, c);
        if w == big_forbidden {
            inf
        } else {
            -w
        }
    };

    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut match_col = vec![0usize; n + 1]; // 0 = unmatched

    for r in 1..=n {
        // Find an augmenting path for row r (1-based).
        let mut links = vec![0usize; n + 1];
        let mut mins = vec![inf; n + 1];
        let mut visited = vec![false; n + 1];
        let mut marked_col = 0usize;
        match_col[0] = r;

        loop {
            visited[marked_col] = true;
            let row = match_col[marked_col];
            let mut delta = inf;
            let mut next_col = 0usize;
            for c in 1..=n {
                if visited[c] {
                    continue;
                }
                let reduced = neg(row - 1, c - 1) - u[row] - v[c];
                if reduced < mins[c] {
                    mins[c] = reduced;
                    links[c] = marked_col;
                }
                if mins[c] < delta {
                    delta = mins[c];
                    next_col = c;
                }
            }
            // delta can stay inf only if every remaining edge is
            // forbidden *and* padding is exhausted, which cannot happen
            // because padded columns always cost 0. Guard anyway.
            if next_col == 0 {
                break;
            }
            for c in 0..=n {
                if visited[c] {
                    u[match_col[c]] += delta;
                    v[c] -= delta;
                } else {
                    mins[c] -= delta;
                }
            }
            marked_col = next_col;
            if match_col[marked_col] == 0 {
                break;
            }
        }
        // Augment along the path.
        while marked_col != 0 {
            let prev = links[marked_col];
            match_col[marked_col] = match_col[prev];
            marked_col = prev;
        }
    }

    let mut row_to_col = vec![None; n_rows];
    let mut total = 0.0;
    for c in 1..=n {
        let r = match_col[c];
        if r >= 1 && r <= n_rows && c <= n_cols {
            let w = weights[r - 1][c - 1];
            if w != big_forbidden {
                row_to_col[r - 1] = Some(c - 1);
                total += w;
            }
        }
    }
    Matching { row_to_col, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimum by permutation enumeration (rows ≤ cols ≤ 7).
    fn brute_force(weights: &[Vec<f64>]) -> f64 {
        let n_rows = weights.len();
        let n_cols = weights.first().map_or(0, Vec::len);
        let cols: Vec<usize> = (0..n_cols).collect();
        let mut best = 0.0f64;
        // choose an injection rows -> cols maximizing finite weight sum;
        // rows may stay unmatched (weight 0 contribution).
        fn rec(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == weights.len() {
                *best = best.max(acc);
                return;
            }
            // leave row unmatched
            rec(weights, row + 1, used, acc, best);
            for c in 0..used.len() {
                if !used[c] && weights[row][c].is_finite() {
                    used[c] = true;
                    rec(weights, row + 1, used, acc + weights[row][c], best);
                    used[c] = false;
                }
            }
        }
        let mut used = vec![false; cols.len()];
        rec(weights, 0, &mut used, 0.0, &mut best);
        let _ = n_rows;
        best
    }

    #[test]
    fn simple_2x2() {
        let w = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 4.0);
        assert_eq!(m.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn diagonal_trap() {
        // row-greedy takes 9 then is stuck with 1 (total 10); the optimum
        // crosses over: 8 + 8 = 16
        let w = vec![vec![9.0, 8.0], vec![8.0, 1.0]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 16.0);
        assert_eq!(m.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_more_cols() {
        let w = vec![vec![1.0, 5.0, 3.0]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 5.0);
        assert_eq!(m.row_to_col, vec![Some(1)]);
    }

    #[test]
    fn rectangular_more_rows() {
        let w = vec![vec![4.0], vec![9.0], vec![1.0]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 9.0);
        assert_eq!(m.row_to_col.iter().filter(|c| c.is_some()).count(), 1);
        assert_eq!(m.row_to_col[1], Some(0));
    }

    #[test]
    fn forbidden_edges_skipped() {
        let neg = f64::NEG_INFINITY;
        let w = vec![vec![neg, 3.0], vec![neg, neg]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 3.0);
        assert_eq!(m.row_to_col, vec![Some(1), None]);
    }

    #[test]
    fn all_forbidden_matches_nothing() {
        let neg = f64::NEG_INFINITY;
        let w = vec![vec![neg, neg], vec![neg, neg]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 0.0);
        assert_eq!(m.row_to_col, vec![None, None]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(max_weight_matching(&[]).total, 0.0);
        let w: Vec<Vec<f64>> = vec![vec![]];
        let m = max_weight_matching(&w);
        assert_eq!(m.row_to_col, vec![None]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let rows = rng.gen_range(1..=5);
            let cols = rng.gen_range(1..=5);
            let w: Vec<Vec<f64>> = (0..rows)
                .map(|_| {
                    (0..cols)
                        .map(|_| {
                            if rng.gen_bool(0.15) {
                                f64::NEG_INFINITY
                            } else {
                                // round to avoid float-ordering ambiguity
                                (rng.gen_range(0.0..10.0f64) * 4.0).round() / 4.0
                            }
                        })
                        .collect()
                })
                .collect();
            let fast = max_weight_matching(&w);
            let slow = brute_force(&w);
            assert!(
                (fast.total - slow).abs() < 1e-9,
                "trial {trial}: fast {} vs brute {slow} on {w:?}",
                fast.total
            );
        }
    }

    #[test]
    fn matching_is_injective() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let w: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..6).map(|_| rng.gen_range(0.0..5.0)).collect())
            .collect();
        let m = max_weight_matching(&w);
        let mut used = std::collections::HashSet::new();
        for c in m.row_to_col.iter().flatten() {
            assert!(used.insert(*c), "column {c} used twice");
        }
    }
}
