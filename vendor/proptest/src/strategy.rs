//! The [`Strategy`] trait and the combinators the workspace uses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Shuffle a generated `Vec` uniformly.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    /// Erase the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S>(pub(crate) S);

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut StdRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Uniform choice among type-erased strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// String strategies from `&'static str` patterns. Only the shape the
/// workspace uses is understood — `.{min,max}`: a string of `min..=max`
/// random printable ASCII chars. Any other pattern yields itself
/// verbatim, which keeps unknown patterns loud in test failures rather
/// than silently empty.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        const POOL: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:-_'!?";
        if let Some((min, max)) = parse_dot_repeat(self) {
            let len = rng.gen_range(min..=max);
            (0..len)
                .map(|_| POOL[rng.gen_range(0..POOL.len())] as char)
                .collect()
        } else {
            (*self).to_owned()
        }
    }
}

/// Parse `.{min,max}` into `(min, max)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = body.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
