//! Order-independent aggregation of [`FairnessReport`]s.
//!
//! The paper's validation protocol (§4.1) never draws conclusions from
//! one run: every objective measure is taken *across* seeds, policies
//! and scenario scales. This module folds a set of audit reports into
//! one [`ReportAggregate`] — per-axiom pass rates and score statistics
//! plus the fairness/transparency/overall indices — for the sweep
//! engine's grid cells and the experiment tables.
//!
//! Every reduction here is **order-independent**: scores are sorted by
//! total order before summation, so the same multiset of reports
//! produces bit-identical statistics no matter which worker thread
//! finished first. That invariant is what lets a parallel sweep promise
//! byte-identical JSON/CSV against a serial one.

use crate::audit::FairnessReport;
use crate::axiom::AxiomId;
use serde::{Deserialize, Serialize};

/// Mean / min / max of a set of scores, reduced order-independently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreStats {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean (0.0 over the empty set).
    pub mean: f64,
    /// Smallest sample (0.0 over the empty set).
    pub min: f64,
    /// Largest sample (0.0 over the empty set).
    pub max: f64,
}

impl ScoreStats {
    /// Statistics over `samples`. Sorts a copy by `f64::total_cmp`
    /// before summing, so the result is independent of input order
    /// (floating-point addition is not associative; a fixed summation
    /// order makes the mean reproducible).
    pub fn of(samples: &[f64]) -> ScoreStats {
        if samples.is_empty() {
            return ScoreStats {
                n: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let sum: f64 = sorted.iter().sum();
        ScoreStats {
            n: sorted.len(),
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
        }
    }
}

/// One axiom's aggregate over a set of reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxiomAggregate {
    /// Which axiom.
    pub axiom: AxiomId,
    /// Reports in which this axiom was audited.
    pub runs: usize,
    /// Reports in which it held (no violations).
    pub passes: usize,
    /// `passes / runs` (1.0 when never audited — absent evidence is not
    /// a violation, matching [`FairnessReport::score_of`]).
    pub pass_rate: f64,
    /// Score statistics across the runs that audited it.
    pub score: ScoreStats,
    /// Total violations across all runs.
    pub violations: usize,
}

/// The fold of many [`FairnessReport`]s: per-axiom pass rates plus
/// fairness/transparency/overall score statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportAggregate {
    /// Number of reports folded.
    pub runs: usize,
    /// Per-axiom aggregates, in paper order, for axioms audited at
    /// least once.
    pub axioms: Vec<AxiomAggregate>,
    /// Statistics of the per-report fairness index (Axioms 1–5 mean).
    pub fairness: ScoreStats,
    /// Statistics of the per-report transparency index (Axioms 6–7 mean).
    pub transparency: ScoreStats,
    /// Statistics of the per-report overall index.
    pub overall: ScoreStats,
    /// Total violations across all reports and axioms.
    pub total_violations: usize,
    /// Reports in which every audited axiom held.
    pub all_hold_runs: usize,
}

impl ReportAggregate {
    /// Fold `reports` into aggregate statistics. Order-independent: any
    /// permutation of the same reports yields an identical aggregate.
    pub fn of(reports: &[FairnessReport]) -> ReportAggregate {
        let mut axioms = Vec::new();
        for id in AxiomId::ALL {
            let audited: Vec<&FairnessReport> =
                reports.iter().filter(|r| r.axiom(id).is_some()).collect();
            if audited.is_empty() {
                continue;
            }
            let scores: Vec<f64> = audited.iter().map(|r| r.score_of(id)).collect();
            let passes = audited
                .iter()
                .filter(|r| r.axiom(id).is_some_and(super::axiom::AxiomReport::holds))
                .count();
            let violations = audited
                .iter()
                .map(|r| r.axiom(id).map_or(0, |a| a.violation_count))
                .sum();
            axioms.push(AxiomAggregate {
                axiom: id,
                runs: audited.len(),
                passes,
                pass_rate: passes as f64 / audited.len() as f64,
                score: ScoreStats::of(&scores),
                violations,
            });
        }
        let collect =
            |f: fn(&FairnessReport) -> f64| -> Vec<f64> { reports.iter().map(f).collect() };
        ReportAggregate {
            runs: reports.len(),
            axioms,
            fairness: ScoreStats::of(&collect(FairnessReport::fairness_score)),
            transparency: ScoreStats::of(&collect(FairnessReport::transparency_score)),
            overall: ScoreStats::of(&collect(FairnessReport::overall_score)),
            total_violations: reports.iter().map(FairnessReport::total_violations).sum(),
            all_hold_runs: reports.iter().filter(|r| r.all_hold()).count(),
        }
    }

    /// Aggregate for one axiom, if it was ever audited.
    pub fn axiom(&self, id: AxiomId) -> Option<&AxiomAggregate> {
        self.axioms.iter().find(|a| a.axiom == id)
    }

    /// Fraction of reports in which *every* audited axiom held (1.0
    /// over the empty fold).
    pub fn all_hold_rate(&self) -> f64 {
        if self.runs == 0 {
            1.0
        } else {
            self.all_hold_runs as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use faircrowd_model::disclosure::DisclosureSet;
    use faircrowd_model::trace::Trace;

    fn reports() -> Vec<FairnessReport> {
        let transparent = Trace {
            disclosure: DisclosureSet::fully_transparent(),
            ..Trace::default()
        };
        let opaque = Trace::default();
        let engine = AuditEngine::with_defaults();
        vec![engine.run(&transparent), engine.run(&opaque)]
    }

    #[test]
    fn score_stats_are_order_independent() {
        let a = [0.1, 0.7, 0.30000000000000004, 0.25, 0.9999999, 0.5];
        let mut b = a;
        b.reverse();
        assert_eq!(ScoreStats::of(&a), ScoreStats::of(&b));
        let s = ScoreStats::of(&a);
        assert_eq!(s.n, a.len());
        assert!((s.min - 0.1).abs() < 1e-12);
        assert!((s.max - 0.9999999).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = ScoreStats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn aggregate_counts_passes_per_axiom() {
        let agg = ReportAggregate::of(&reports());
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.axioms.len(), 7);
        // Fairness axioms hold on both empty traces.
        let a1 = agg.axiom(AxiomId::A1WorkerAssignment).unwrap();
        assert_eq!(a1.passes, 2);
        assert!((a1.pass_rate - 1.0).abs() < 1e-12);
        // Platform transparency fails on the opaque trace.
        let a7 = agg.axiom(AxiomId::A7PlatformTransparency).unwrap();
        assert_eq!(a7.runs, 2);
        assert_eq!(a7.passes, 1);
        assert!((a7.pass_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn aggregate_is_permutation_invariant() {
        let mut rs = reports();
        let forward = ReportAggregate::of(&rs);
        rs.reverse();
        let backward = ReportAggregate::of(&rs);
        assert_eq!(forward, backward);
    }

    #[test]
    fn unaudited_axioms_are_omitted() {
        let engine = AuditEngine::with_defaults();
        let trace = Trace::default();
        let partial = vec![engine.run_axioms(&trace, &[AxiomId::A3Compensation])];
        let agg = ReportAggregate::of(&partial);
        assert_eq!(agg.axioms.len(), 1);
        assert!(agg.axiom(AxiomId::A1WorkerAssignment).is_none());
    }

    #[test]
    fn empty_fold_is_benign() {
        let agg = ReportAggregate::of(&[]);
        assert_eq!(agg.runs, 0);
        assert!(agg.axioms.is_empty());
        assert_eq!(agg.total_violations, 0);
        assert!((agg.all_hold_rate() - 1.0).abs() < 1e-12);
    }
}
