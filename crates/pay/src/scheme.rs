//! Compensation schemes.
//!
//! A [`CompensationScheme`] decides what a submission earns given the task
//! reward and the platform's quality estimate for the contribution. The
//! paper's §2.1 surveys quality-based reward schemes (Wang, Ipeirotis,
//! Provost \[21\]) where "compensation depends on the quality of a worker's
//! contribution"; §3.1.1 lists the failure modes (wrongful rejection,
//! reneged bonuses, unequal pay in collaborative tasks) that the schemes
//! and splits here let experiments reproduce and the Axiom-3 checker
//! detect.

use faircrowd_model::money::Credits;
use faircrowd_model::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything a scheme may consult when pricing one submission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PayContext {
    /// The task's advertised reward `d_t`.
    pub task_reward: Credits,
    /// Platform estimate of this contribution's quality in `[0, 1]`.
    pub quality: f64,
    /// Time the worker invested.
    pub work_duration: SimDuration,
}

/// A rule mapping a submission to a payment. Implementations must be pure:
/// same context, same payout — that determinism is what makes Axiom-3
/// audits meaningful.
pub trait CompensationScheme {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// The payment for a submission. `Credits::ZERO` means rejection
    /// without pay.
    fn payout(&self, ctx: &PayContext) -> Credits;
}

/// Pay the advertised reward to every approved contribution — the
/// piecework baseline of AMT-style platforms. Fair by construction under
/// Axiom 3 (identical pay for all contributions to a task).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedPrice;

impl CompensationScheme for FixedPrice {
    fn name(&self) -> &'static str {
        "fixed-price"
    }

    fn payout(&self, ctx: &PayContext) -> Credits {
        ctx.task_reward
    }
}

/// Quality-based pricing after Wang–Ipeirotis–Provost: contributions below
/// a quality floor earn nothing; above it, pay ramps linearly and reaches
/// the full reward at `full_quality`.
///
/// Because the platform's quality *estimate* is noisy, two objectively
/// similar contributions can straddle the floor and be paid differently —
/// the Axiom-3 tension E2 measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityBased {
    /// Quality below this earns nothing.
    pub floor: f64,
    /// Quality at or above this earns the full reward.
    pub full_quality: f64,
}

impl Default for QualityBased {
    fn default() -> Self {
        QualityBased {
            floor: 0.5,
            full_quality: 0.9,
        }
    }
}

impl CompensationScheme for QualityBased {
    fn name(&self) -> &'static str {
        "quality-based"
    }

    fn payout(&self, ctx: &PayContext) -> Credits {
        let q = ctx.quality.clamp(0.0, 1.0);
        if q < self.floor {
            return Credits::ZERO;
        }
        if q >= self.full_quality || self.full_quality <= self.floor {
            return ctx.task_reward;
        }
        let frac = (q - self.floor) / (self.full_quality - self.floor);
        ctx.task_reward.mul_f64(frac)
    }
}

/// A bonus promise attached to task completion: workers whose quality
/// reaches `quality_threshold` are *promised* `amount` on top of base pay.
/// Whether the promise is honoured is the requester's choice — reneging is
/// the §3.1.1 scenario "a requester promises to provide a bonus … but does
/// not do so in the end".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BonusPolicy {
    /// The bonus amount promised.
    pub amount: Credits,
    /// Quality needed to qualify for the bonus.
    pub quality_threshold: f64,
    /// Whether the requester actually pays promised bonuses.
    pub honoured: bool,
}

impl BonusPolicy {
    /// Does this context qualify for the bonus promise?
    pub fn qualifies(&self, ctx: &PayContext) -> bool {
        ctx.quality >= self.quality_threshold
    }

    /// The bonus actually paid for this context (zero when reneged or
    /// unqualified).
    pub fn paid_amount(&self, ctx: &PayContext) -> Credits {
        if self.qualifies(ctx) && self.honoured {
            self.amount
        } else {
            Credits::ZERO
        }
    }
}

/// Split a collaborative task's reward into `n` equal shares (exact: the
/// shares sum to `total`).
pub fn split_equal(total: Credits, n: usize) -> Vec<Credits> {
    total.split_evenly(n)
}

/// Split a collaborative task's reward proportionally to non-negative
/// contribution weights, using the largest-remainder method so shares are
/// exact to the millicent and sum to `total`. All-zero weights fall back
/// to an equal split.
pub fn split_proportional(total: Credits, weights: &[f64]) -> Vec<Credits> {
    assert!(
        weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
        "weights must be non-negative and finite"
    );
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return split_equal(total, n);
    }
    let raw: Vec<f64> = weights
        .iter()
        .map(|&w| total.millicents() as f64 * (w / sum))
        .collect();
    let mut shares: Vec<i64> = raw.iter().map(|&r| r.floor() as i64).collect();
    let assigned: i64 = shares.iter().sum();
    let mut leftover = total.millicents() - assigned;
    // distribute leftover millicents by largest fractional remainder,
    // breaking ties by index for determinism
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let fa = raw[a] - raw[a].floor();
        let fb = raw[b] - raw[b].floor();
        fb.partial_cmp(&fa).expect("NaN remainder").then(a.cmp(&b))
    });
    let mut k = 0;
    while leftover > 0 {
        shares[order[k % n]] += 1;
        leftover -= 1;
        k += 1;
    }
    shares.into_iter().map(Credits::from_millicents).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(reward_cents: i64, quality: f64) -> PayContext {
        PayContext {
            task_reward: Credits::from_cents(reward_cents),
            quality,
            work_duration: SimDuration::from_mins(5),
        }
    }

    #[test]
    fn fixed_price_ignores_quality() {
        let s = FixedPrice;
        assert_eq!(s.payout(&ctx(10, 0.1)), Credits::from_cents(10));
        assert_eq!(s.payout(&ctx(10, 0.99)), Credits::from_cents(10));
        assert_eq!(s.name(), "fixed-price");
    }

    #[test]
    fn quality_based_ramp() {
        let s = QualityBased {
            floor: 0.5,
            full_quality: 0.9,
        };
        assert_eq!(s.payout(&ctx(100, 0.3)), Credits::ZERO);
        assert_eq!(s.payout(&ctx(100, 0.95)), Credits::from_dollars(1));
        // midpoint of the ramp: 0.7 -> 50%
        assert_eq!(s.payout(&ctx(100, 0.7)), Credits::from_cents(50));
        // exactly at floor: 0%
        assert_eq!(s.payout(&ctx(100, 0.5)), Credits::ZERO);
        // quality clamped
        assert_eq!(s.payout(&ctx(100, 1.5)), Credits::from_dollars(1));
    }

    #[test]
    fn quality_based_degenerate_ramp() {
        let s = QualityBased {
            floor: 0.5,
            full_quality: 0.5,
        };
        assert_eq!(s.payout(&ctx(100, 0.49)), Credits::ZERO);
        assert_eq!(s.payout(&ctx(100, 0.5)), Credits::from_dollars(1));
    }

    #[test]
    fn bonus_policy_honoured_and_reneged() {
        let honest = BonusPolicy {
            amount: Credits::from_cents(50),
            quality_threshold: 0.8,
            honoured: true,
        };
        let reneger = BonusPolicy {
            honoured: false,
            ..honest
        };
        let good = ctx(10, 0.9);
        let bad = ctx(10, 0.5);
        assert!(honest.qualifies(&good));
        assert_eq!(honest.paid_amount(&good), Credits::from_cents(50));
        assert_eq!(honest.paid_amount(&bad), Credits::ZERO);
        assert!(reneger.qualifies(&good), "promise still made");
        assert_eq!(reneger.paid_amount(&good), Credits::ZERO, "but not kept");
    }

    #[test]
    fn equal_split_is_exact() {
        let shares = split_equal(Credits::from_millicents(100), 3);
        assert_eq!(
            shares.iter().copied().sum::<Credits>(),
            Credits::from_millicents(100)
        );
    }

    #[test]
    fn proportional_split_follows_weights() {
        let shares = split_proportional(Credits::from_cents(100), &[3.0, 1.0]);
        assert_eq!(shares[0], Credits::from_cents(75));
        assert_eq!(shares[1], Credits::from_cents(25));
    }

    #[test]
    fn proportional_split_is_exact_with_awkward_weights() {
        let total = Credits::from_millicents(1000);
        let shares = split_proportional(total, &[1.0, 1.0, 1.0]);
        assert_eq!(shares.iter().copied().sum::<Credits>(), total);
        let spread = shares.iter().map(|s| s.millicents()).max().unwrap()
            - shares.iter().map(|s| s.millicents()).min().unwrap();
        assert!(spread <= 1);

        let odd = split_proportional(Credits::from_millicents(7), &[0.2, 0.3, 0.5]);
        assert_eq!(
            odd.iter().copied().sum::<Credits>(),
            Credits::from_millicents(7)
        );
    }

    #[test]
    fn proportional_split_zero_weights_fall_back_to_equal() {
        let shares = split_proportional(Credits::from_cents(30), &[0.0, 0.0, 0.0]);
        assert_eq!(shares, vec![Credits::from_cents(10); 3]);
        assert!(split_proportional(Credits::from_cents(30), &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let _ = split_proportional(Credits::from_cents(10), &[1.0, -1.0]);
    }
}
