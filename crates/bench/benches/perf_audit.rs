//! P1 — Audit-engine throughput.
//!
//! Criterion micro-benchmark: full seven-axiom audits over traces of
//! increasing size. The axiom checkers are quadratic in worker/task pairs
//! (the quantifier domains), so this is the scaling knob that matters for
//! auditing a real platform's day of logs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd_bench::presets;
use faircrowd_core::AuditEngine;
use faircrowd_model::trace::Trace;
use faircrowd_sim::{PolicyChoice, Simulation, WorkerPopulation};
use std::hint::black_box;

fn trace_of_size(workers: u32, tasks: u32) -> Trace {
    let mut cfg = presets::labeling_market(7, PolicyChoice::SelfSelection);
    cfg.workers = vec![WorkerPopulation::diligent(workers)];
    cfg.campaigns[0].n_tasks = tasks;
    cfg.campaigns[1].n_tasks = tasks;
    cfg.rounds = 24;
    Simulation::new(cfg).run()
}

fn bench_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit_full");
    group.sample_size(10);
    for (workers, tasks) in [(25u32, 40u32), (50, 80), (100, 160)] {
        let trace = trace_of_size(workers, tasks);
        let engine = AuditEngine::with_defaults();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{workers}w-{}t", tasks * 2)),
            &trace,
            |b, trace| b.iter(|| black_box(engine.run(black_box(trace)))),
        );
    }
    group.finish();
}

fn bench_single_axioms(c: &mut Criterion) {
    use faircrowd_core::AxiomId;
    let trace = trace_of_size(50, 80);
    let engine = AuditEngine::with_defaults();
    let mut group = c.benchmark_group("audit_single_axiom");
    group.sample_size(10);
    for id in AxiomId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(id.label()), &id, |b, &id| {
            b.iter(|| black_box(engine.run_axioms(black_box(&trace), &[id])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_audit, bench_single_axioms);
criterion_main!(benches);
