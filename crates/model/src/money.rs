//! Fixed-point money.
//!
//! Rewards (`d_t` in the paper) and every ledger movement are expressed in
//! [`Credits`]: a signed 64-bit count of **millicents** (1/1000 of a cent).
//! Crowd micro-payments are routinely fractions of a cent, and floating
//! point money is how ledgers stop balancing, so all arithmetic here is
//! integer, checked in debug builds and saturating in release.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

/// Millicents per cent.
const MILLIS_PER_CENT: i64 = 1_000;
/// Millicents per dollar.
const MILLIS_PER_DOLLAR: i64 = 100_000;

/// A signed amount of money in millicents (1/1000 cent).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Credits(pub i64);

impl Credits {
    /// Zero money.
    pub const ZERO: Credits = Credits(0);

    /// One cent.
    pub const CENT: Credits = Credits(MILLIS_PER_CENT);

    /// One dollar.
    pub const DOLLAR: Credits = Credits(MILLIS_PER_DOLLAR);

    /// Construct from raw millicents.
    pub const fn from_millicents(mc: i64) -> Self {
        Credits(mc)
    }

    /// Construct from whole cents.
    pub const fn from_cents(c: i64) -> Self {
        Credits(c * MILLIS_PER_CENT)
    }

    /// Construct from whole dollars.
    pub const fn from_dollars(d: i64) -> Self {
        Credits(d * MILLIS_PER_DOLLAR)
    }

    /// Raw millicents.
    pub const fn millicents(self) -> i64 {
        self.0
    }

    /// Value in (fractional) dollars — for statistics only, never for
    /// ledger arithmetic.
    pub fn as_dollars_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_DOLLAR as f64
    }

    /// True when the amount is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// True when the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Credits) -> Option<Credits> {
        self.0.checked_add(rhs.0).map(Credits)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Credits) -> Option<Credits> {
        self.0.checked_sub(rhs.0).map(Credits)
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Credits) -> Credits {
        Credits(self.0.saturating_add(rhs.0))
    }

    /// Scale by a non-negative factor, rounding half away from zero.
    /// Used by quality-adjusted compensation schemes.
    pub fn mul_f64(self, factor: f64) -> Credits {
        debug_assert!(factor.is_finite(), "scale factor must be finite");
        let v = self.0 as f64 * factor;
        Credits(round_half_away(v))
    }

    /// Integer multiplication (e.g. `reward * units`).
    pub fn mul_int(self, n: i64) -> Credits {
        Credits(self.0.saturating_mul(n))
    }

    /// Divide into `n` equal shares; the remainder millicents are
    /// distributed to the first `rem` shares so the sum of shares is exact.
    /// Returns an empty vec when `n == 0`.
    pub fn split_evenly(self, n: usize) -> Vec<Credits> {
        if n == 0 {
            return Vec::new();
        }
        let n_i = n as i64;
        let base = self.0.div_euclid(n_i);
        let rem = self.0.rem_euclid(n_i);
        (0..n_i)
            .map(|i| Credits(base + i64::from(i < rem)))
            .collect()
    }

    /// Absolute difference between two amounts.
    pub fn abs_diff(self, rhs: Credits) -> Credits {
        Credits((self.0 - rhs.0).abs())
    }

    /// The larger of two amounts.
    pub fn max(self, rhs: Credits) -> Credits {
        Credits(self.0.max(rhs.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, rhs: Credits) -> Credits {
        Credits(self.0.min(rhs.0))
    }
}

fn round_half_away(v: f64) -> i64 {
    if v >= 0.0 {
        (v + 0.5).floor() as i64
    } else {
        (v - 0.5).ceil() as i64
    }
}

impl Add for Credits {
    type Output = Credits;
    fn add(self, rhs: Credits) -> Credits {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "credits addition overflow"
        );
        Credits(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Credits {
    fn add_assign(&mut self, rhs: Credits) {
        *self = *self + rhs;
    }
}

impl Sub for Credits {
    type Output = Credits;
    fn sub(self, rhs: Credits) -> Credits {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "credits subtraction overflow"
        );
        Credits(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Credits {
    fn sub_assign(&mut self, rhs: Credits) {
        *self = *self - rhs;
    }
}

impl Neg for Credits {
    type Output = Credits;
    fn neg(self) -> Credits {
        Credits(-self.0)
    }
}

impl Sum for Credits {
    fn sum<I: Iterator<Item = Credits>>(iter: I) -> Credits {
        iter.fold(Credits::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Credits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / MILLIS_PER_DOLLAR as u64;
        let sub_dollar = abs % MILLIS_PER_DOLLAR as u64;
        let cents = sub_dollar / MILLIS_PER_CENT as u64;
        let millis = sub_dollar % MILLIS_PER_CENT as u64;
        if millis == 0 {
            write!(f, "{sign}${dollars}.{cents:02}")
        } else {
            write!(f, "{sign}${dollars}.{cents:02}{millis:03}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_units() {
        assert_eq!(Credits::from_cents(5).millicents(), 5_000);
        assert_eq!(Credits::from_dollars(2).millicents(), 200_000);
        assert_eq!(Credits::DOLLAR, Credits::from_cents(100));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Credits::from_cents(5).to_string(), "$0.05");
        assert_eq!(Credits::from_dollars(12).to_string(), "$12.00");
        assert_eq!(Credits::from_millicents(1_234_567).to_string(), "$12.34567");
        assert_eq!(Credits::from_cents(-250).to_string(), "-$2.50");
    }

    #[test]
    fn split_evenly_is_exact() {
        let total = Credits::from_millicents(10);
        let shares = total.split_evenly(3);
        assert_eq!(shares.len(), 3);
        assert_eq!(shares.iter().copied().sum::<Credits>(), total);
        // max spread between shares is one millicent
        let max = shares.iter().max().unwrap().0;
        let min = shares.iter().min().unwrap().0;
        assert!(max - min <= 1);
        assert!(total.split_evenly(0).is_empty());
    }

    #[test]
    fn mul_f64_rounds_half_away() {
        assert_eq!(Credits::from_millicents(10).mul_f64(0.25).0, 3); // 2.5 -> 3
        assert_eq!(Credits::from_millicents(-10).mul_f64(0.25).0, -3);
        assert_eq!(Credits::from_cents(10).mul_f64(0.8), Credits::from_cents(8));
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = Credits::from_cents(10);
        let b = Credits::from_cents(3);
        assert_eq!(a + b, Credits::from_cents(13));
        assert_eq!(a - b, Credits::from_cents(7));
        assert_eq!(-b, Credits::from_cents(-3));
        let v = vec![a, b, Credits::from_cents(7)];
        assert_eq!(v.into_iter().sum::<Credits>(), Credits::from_cents(20));
    }

    #[test]
    fn comparisons() {
        assert!(Credits::from_cents(5) > Credits::from_cents(4));
        assert_eq!(
            Credits::from_cents(5).abs_diff(Credits::from_cents(8)),
            Credits::from_cents(3)
        );
        assert_eq!(
            Credits::from_cents(5).max(Credits::from_cents(8)),
            Credits::from_cents(8)
        );
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert!(Credits(i64::MAX).checked_add(Credits(1)).is_none());
        assert!(Credits(i64::MIN).checked_sub(Credits(1)).is_none());
        assert_eq!(
            Credits(i64::MAX).saturating_add(Credits(1)),
            Credits(i64::MAX)
        );
    }
}
