//! Assignment discrimination and its repair.
//!
//! Reproduces the §3.1.1 story in miniature: the same market run under
//! the requester-centric optimiser violates Axiom 1 (similar workers see
//! different tasks), and staging the exposure-parity enforcement in the
//! pipeline repairs the violation without touching the assignments —
//! baseline and repaired runs come out of a single `Pipeline::run`.
//!
//! ```sh
//! cargo run --example assignment_fairness
//! ```

use faircrowd::core::metrics;
use faircrowd::pipeline::RunArtifacts;
use faircrowd::prelude::*;

fn market() -> ScenarioConfig {
    let full_time = |mut p: WorkerPopulation| {
        p.participation = 1.0; // controlled condition: everyone online
        p
    };
    ScenarioConfig {
        seed: 7,
        rounds: 36,
        n_skills: 4,
        workers: vec![full_time(WorkerPopulation::diligent(24))],
        campaigns: vec![
            CampaignSpec::labeling("acme", 40, 10),
            CampaignSpec::labeling("globex", 40, 10),
        ],
        ..Default::default()
    }
}

fn print_row(label: &str, artifacts: &RunArtifacts) {
    let report = &artifacts.report;
    println!(
        "{:<26} {:>6.3} {:>6.3} {:>14.3}  {:>9}",
        label,
        report.score_of(AxiomId::A1WorkerAssignment),
        report.score_of(AxiomId::A2RequesterAssignment),
        metrics::exposure_gini(&faircrowd::core::TraceIndex::new(&artifacts.trace)),
        report.total_violations(),
    );
    // Show one concrete witness when the policy discriminates.
    if let Some(v) = report
        .axioms
        .iter()
        .flat_map(|r| r.violations.iter())
        .next()
    {
        println!("    e.g. {}", v.description);
    }
}

fn main() -> Result<(), FaircrowdError> {
    let exposure_axioms = [AxiomId::A1WorkerAssignment, AxiomId::A2RequesterAssignment];

    // The fair baseline: post-and-browse.
    let fair = Pipeline::new()
        .scenario(market())
        .policy_name("self_selection")?
        .axioms(&exposure_axioms)
        .run()?;

    // The optimiser, with the parity repair staged: one pipeline run
    // yields the discriminatory baseline AND the repaired re-audit.
    let optimised = Pipeline::new()
        .scenario(market())
        .policy_name("requester_centric")?
        .axioms(&exposure_axioms)
        .enforce(Enforcement::ExposureParity)
        .run()?;
    let repaired = optimised.enforced.as_ref().expect("enforcement was staged");

    println!("policy                        A1     A2   exposure-gini  violations");
    println!("--------------------------------------------------------------------");
    print_row(&fair.config.policy.label(), &fair.baseline);
    print_row(&optimised.config.policy.label(), &optimised.baseline);
    print_row(&repaired.config.policy.label(), &repaired.artifacts);

    println!(
        "\nThe requester-centric optimiser concentrates exposure on its favourite \
         workers; the exposure-parity wrapper (§3.3.1 'fairness by design') \
         restores equal access for similar workers while keeping the exact same \
         assignments — fairness here costs the requester nothing."
    );
    Ok(())
}
