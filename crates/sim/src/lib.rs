//! # faircrowd-sim
//!
//! A deterministic crowdsourcing-marketplace simulator.
//!
//! The paper's validation protocol (§4.1) calls for **controlled
//! experiments** measuring objective quantities — contribution quality for
//! fairness, worker retention for transparency. A live platform cannot
//! provide controlled ground truth; this simulator can. It models the full
//! marketplace loop:
//!
//! ```text
//! campaigns post tasks → assignment policy exposes tasks to workers →
//! workers accept, work, submit → requesters approve/reject (with delay,
//! with or without feedback) → payments/bonuses → possible cancellation
//! mid-flight → detection sweeps → worker frustration/retention dynamics
//! ```
//!
//! and emits the complete audit [`faircrowd_model::event::EventLog`] that
//! the `faircrowd-core` audit engine replays. Every run is a pure function
//! of its [`config::ScenarioConfig`] (seed included).
//!
//! Behavioural assumptions (worker frustration, quit hazard, motivation)
//! are documented on [`agents::WorkerState`] and in DESIGN.md — they are
//! the synthetic stand-in for the user studies the paper proposes.
//!
//! Scenarios are either built field-by-field ([`config::ScenarioConfig`])
//! or taken from the named [`catalog`] (`"baseline"`,
//! `"spam_campaign"`, …) that the CLI and the sweep engine address by
//! string.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agents;
pub mod catalog;
pub mod config;
pub mod converge;
pub mod gen;
pub mod platform;
pub mod scenarios;
pub mod stats;
pub mod strategy;

pub use config::{
    ApprovalPolicy, CampaignSpec, CancellationPolicy, DetectionConfig, PaymentSchemeChoice,
    PolicyChoice, ScenarioConfig, WorkerPopulation,
};
pub use converge::{ConvergeOptions, Converged, IterationSummary};
pub use platform::{LiveSetup, RoundDelta, Simulation};
pub use stats::TraceSummary;
pub use strategy::{StrategyChoice, StrategyState};

/// Run a scenario to completion and return its trace.
pub fn run(config: ScenarioConfig) -> faircrowd_model::Trace {
    Simulation::new(config).run()
}
