//! Writes the streaming-audit perf baseline (`BENCH_stream.json`).
//!
//! Times the three ways to keep a fairness verdict current while events
//! arrive, over the `baseline` catalog scenario at scales 1 / 4 / 16:
//!
//! * **incremental** — the live path: a `LiveAuditor` ingests every
//!   event once (mirror updates + per-event monitors), then closes with
//!   `final_report()` off its incrementally maintained mirrors;
//! * **rebuild-per-event** — the strawman a platform without the live
//!   subsystem would have to run: after each event, rebuild the
//!   `TraceIndex` over the whole prefix from scratch (measured over a
//!   capped prefix; a full sweep would take hours at scale 16);
//! * **batch** — the one-shot post-hoc audit (index + all seven
//!   axioms), the lower bound no streaming path can beat but also the
//!   path that answers only after the market closed.
//!
//! ```text
//! cargo run --release --bin stream_baseline > BENCH_stream.json
//! ```
//!
//! Each row also times the **file-to-verdict** path for a *recorded*
//! stream: decode the trace from its on-disk form (line-oriented JSONL
//! vs the binary `.fcb`), then ingest it through the live path —
//! the columns the `.fcb` format adds are `jsonl_decode_ms`,
//! `fcb_decode_ms`, `fcb_decode_speedup` and the summed
//! `file_to_verdict_*_ms` figures.
//!
//! The binary asserts the incremental closing report is bit-identical
//! to the batch report before printing a number, and asserts the
//! acceptance ratios (incremental ≥ 10× rebuild-per-event at scale 16,
//! and `.fcb` decode ≥ 5× JSONL decode of the same scale-16 trace).
//! Timings are medians over repeated runs; the hardware-stable numbers
//! are the events/s *ratios*.

use faircrowd_core::live::LiveAuditor;
use faircrowd_core::persist::{self, TraceFormat};
use faircrowd_core::{AuditConfig, AuditEngine, TraceIndex};
use faircrowd_model::event::EventLog;
use faircrowd_model::trace::Trace;
use faircrowd_sim::{catalog, Simulation};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Ingest a whole trace through a fresh live auditor and close it.
fn stream(trace: &Trace) -> LiveAuditor {
    let mut auditor = LiveAuditor::new(AuditConfig::default());
    auditor.ingest_trace(trace).expect("well-formed stream");
    auditor.finalize();
    auditor
}

fn main() {
    let engine = AuditEngine::with_defaults();
    let mut rows = String::new();
    let mut speedup_at_16 = 0.0f64;
    let mut fcb_decode_speedup_at_16 = 0.0f64;

    for (i, scale) in [1u32, 4, 16].into_iter().enumerate() {
        let config = catalog::get("baseline")
            .expect("baseline is in the catalog")
            .at_scale(f64::from(scale));
        let trace: Trace = Simulation::new(config).run();
        let events = trace.events.len();

        // The oracle, before any number: streaming must lose nothing.
        let auditor = stream(&trace);
        let live_report = auditor.final_report();
        let batch_report = engine.run(&trace);
        assert_eq!(live_report, batch_report, "stream ≠ batch at scale {scale}");
        let live_findings = auditor.findings().len() + auditor.suppressed_findings();
        drop(auditor);

        let runs = match scale {
            1 => 11,
            4 => 5,
            _ => 3,
        };

        // Incremental: ingest every event once (mirrors + monitors),
        // close off the mirrors.
        let incremental_ms = median_ms(runs, || {
            let auditor = stream(black_box(&trace));
            black_box(auditor.final_report());
        });

        // Rebuild-per-event: re-index the whole prefix after each event
        // — measured over a capped prefix (the cost per event *grows*
        // with the prefix, so the capped figure flatters this path).
        let rebuild_cap = (events / 10).clamp(1, 400).min(events);
        let rebuild_ms = median_ms(3, || {
            let mut prefix = trace.clone();
            prefix.events = EventLog::new();
            for e in &trace.events.as_slice()[..rebuild_cap] {
                prefix.events.push_event(e.clone());
                let ix = TraceIndex::new(black_box(&prefix));
                black_box(ix.visibility().len());
            }
        });

        // Batch: one post-hoc index + seven-axiom audit.
        let batch_ms = median_ms(runs, || {
            black_box(engine.run(black_box(&trace)));
        });

        // File-to-verdict: the recorded-stream path decodes the trace
        // from its on-disk bytes before it can ingest anything. Same
        // trace in both formats, so the decode ratio is events/s.
        let jsonl_bytes = persist::encode_bytes(&trace, TraceFormat::Jsonl);
        let fcb_bytes = persist::encode_bytes(&trace, TraceFormat::Binary);
        let jsonl_decode_ms = median_ms(runs, || {
            black_box(persist::decode_bytes(black_box(&jsonl_bytes)).expect("decode"));
        });
        let fcb_decode_ms = median_ms(runs, || {
            black_box(persist::decode_bytes(black_box(&fcb_bytes)).expect("decode"));
        });
        let fcb_decode_speedup = jsonl_decode_ms / fcb_decode_ms;
        if scale == 16 {
            fcb_decode_speedup_at_16 = fcb_decode_speedup;
        }

        let incremental_eps = events as f64 / (incremental_ms / 1e3);
        let rebuild_eps = rebuild_cap as f64 / (rebuild_ms / 1e3);
        let batch_eps = events as f64 / (batch_ms / 1e3);
        let speedup = incremental_eps / rebuild_eps;
        if scale == 16 {
            speedup_at_16 = speedup;
        }

        if i > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"scale\": {scale}, \"workers\": {}, \"tasks\": {}, \"events\": {events}, \
             \"live_findings\": {live_findings}, \
             \"incremental_ms\": {incremental_ms:.3}, \"incremental_events_s\": {:.0}, \
             \"rebuild_cap_events\": {rebuild_cap}, \"rebuild_ms\": {rebuild_ms:.3}, \
             \"rebuild_events_s\": {:.1}, \
             \"batch_ms\": {batch_ms:.3}, \"batch_events_s\": {:.0}, \
             \"speedup_incremental_vs_rebuild\": {:.1}, \
             \"jsonl_decode_ms\": {jsonl_decode_ms:.3}, \
             \"fcb_decode_ms\": {fcb_decode_ms:.3}, \
             \"fcb_decode_speedup\": {fcb_decode_speedup:.1}, \
             \"file_to_verdict_jsonl_ms\": {:.3}, \
             \"file_to_verdict_fcb_ms\": {:.3}}}",
            trace.workers.len(),
            trace.tasks.len(),
            incremental_eps,
            rebuild_eps,
            batch_eps,
            speedup,
            jsonl_decode_ms + incremental_ms,
            fcb_decode_ms + incremental_ms,
        );
    }

    assert!(
        speedup_at_16 >= 10.0,
        "acceptance: incremental must beat rebuild-per-event ≥ 10× at scale 16 \
         (measured {speedup_at_16:.1}×)"
    );
    assert!(
        fcb_decode_speedup_at_16 >= 5.0,
        "acceptance: .fcb decode must beat JSONL decode ≥ 5× on the same scale-16 \
         trace (measured {fcb_decode_speedup_at_16:.1}×)"
    );

    println!("{{");
    println!("  \"bench\": \"stream\",");
    println!("  \"scenario\": \"baseline\",");
    println!("  \"paths\": [\"incremental\", \"rebuild_per_event\", \"batch\"],");
    println!("  \"unit\": \"ms (median)\",");
    println!(
        "  \"note\": \"incremental = LiveAuditor ingest (mirrors + monitors) + mirror-backed \
         closing report, asserted bit-identical to batch; rebuild_per_event timed over the \
         first rebuild_cap_events of the stream (per-event cost grows with the prefix, so \
         the capped events/s flatters that path); file_to_verdict_*_ms = decode the \
         recorded trace from its on-disk bytes (JSONL vs .fcb) + the incremental ingest\","
    );
    println!("  \"scales\": [");
    println!("{rows}");
    println!("  ]");
    println!("}}");
}
