//! The multi-market audit daemon: many [`LiveAuditor`]s — one per
//! market id — multiplexed behind one service, sharded across a scoped
//! thread pool, with checkpointed, resumable state.
//!
//! A production crowdsourcing platform is not one market: it runs
//! thousands of concurrent task markets, each appending its own JSONL
//! event stream. [`AuditDaemon`] is the platform-resident form of the
//! paper's transparency machinery for that shape (`faircrowd serve`):
//!
//! - **Multiplexing** — every market gets its own [`LiveAuditor`] and
//!   [`JsonlReader`]. Markets are discovered as `<market>.jsonl` files
//!   in a directory ([`MarketSource::discover`]) and tailed by the
//!   daemon itself, or fed line-by-line through
//!   [`AuditDaemon::feed_line`] — the consumption route for a single
//!   multiplexed stream whose records carry a market tag: route each
//!   line by its tag and the daemon does the rest.
//! - **Sharding** — each market is pinned to a shard by an FNV-1a hash
//!   of its name (stable across runs and processes, unlike the
//!   process-seeded `RandomState`), and each [`AuditDaemon::poll`]
//!   round runs the shards on a scoped thread pool
//!   (`--jobs`). Per-market work is sequential, so per-market results
//!   are bit-identical whatever the shard count or thread timing.
//! - **One ordered finding stream** — every round's findings are
//!   merged into a single deterministic order (market name, then
//!   per-market emission order) and tagged as
//!   [`DaemonFinding`]`{market, finding}`; each market's subsequence
//!   is exactly what a dedicated single-stream `watch` would emit.
//! - **Checkpoints** — with a checkpoint directory configured, each
//!   market's auditor state is snapshotted through
//!   [`crate::checkpoint`] every `checkpoint_every` events. A
//!   restarted daemon ([`AuditDaemon::open`] over the same directory)
//!   resumes every stream from its last checkpoint seq *without
//!   replaying the log*: the file is skipped to the checkpointed line,
//!   the auditor continues from its restored mirrors, and finishing
//!   the stream is bit-identical — findings, final report, wages — to
//!   never having stopped. A checkpoint that fails any load gate
//!   (truncated, foreign schema, future version, header seq
//!   disagreeing with its mirror) is reported as a notice and the
//!   market falls back to replaying its trace from the start.
//!
//! Failure isolation is per market: a stream that breaks mid-line (or
//! a trace that violates arrival order) marks **that market** failed
//! with a line-tagged error and the daemon keeps serving the rest.

use crate::audit::{AuditConfig, FairnessReport};
use crate::axiom::AxiomId;
use crate::checkpoint;
use crate::live::{LiveAuditor, LiveFinding};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::trace_io::JsonlReader;
use faircrowd_pay::wage::WageStats;
use std::collections::BTreeMap;
use std::io::Read;
use std::path::{Path, PathBuf};

/// How an [`AuditDaemon`] is configured.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The audit configuration every market's auditor runs under.
    pub audit: AuditConfig,
    /// Shard (thread) count for each poll round. Clamped to at least 1.
    pub jobs: usize,
    /// Where checkpoints are written and resumed from
    /// (`<dir>/<market>.checkpoint.json`). `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint a market after this many newly ingested events
    /// (cadence, not an exact stride: snapshots are taken between poll
    /// rounds). Must be at least 1 to matter.
    pub checkpoint_every: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            audit: AuditConfig::default(),
            jobs: 1,
            checkpoint_dir: None,
            checkpoint_every: 512,
        }
    }
}

/// One discovered market stream: a name and the trace file backing it —
/// a growing `.jsonl` stream, or a finished `.fcb` recording ingested
/// in one shot.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MarketSource {
    /// Market id — the file stem of `<market>.jsonl` / `<market>.fcb`.
    pub market: String,
    /// The backing trace file.
    pub path: PathBuf,
}

impl MarketSource {
    /// Discover every `<market>.jsonl` and `<market>.fcb` in a
    /// directory, sorted by market name. Other entries are ignored; an
    /// unreadable directory is an [`FaircrowdError::Io`] carrying the
    /// path; a market stem present in **both** formats is a
    /// [`FaircrowdError::Persist`] naming the stem (two files claiming
    /// one market is an operator mistake — silently picking either
    /// would audit half the story).
    pub fn discover(dir: impl AsRef<Path>) -> Result<Vec<MarketSource>, FaircrowdError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| FaircrowdError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let mut sources = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| FaircrowdError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if !matches!(
                path.extension().and_then(|e| e.to_str()),
                Some("jsonl") | Some("fcb")
            ) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            sources.push(MarketSource {
                market: stem.to_owned(),
                path,
            });
        }
        sources.sort();
        for pair in sources.windows(2) {
            if pair[0].market == pair[1].market {
                return Err(FaircrowdError::persist(format!(
                    "market `{}` has both `{}` and `{}` in `{}`; keep exactly one trace \
                     file per market",
                    pair[0].market,
                    pair[0]
                        .path
                        .file_name()
                        .unwrap_or_default()
                        .to_string_lossy(),
                    pair[1]
                        .path
                        .file_name()
                        .unwrap_or_default()
                        .to_string_lossy(),
                    dir.display(),
                )));
            }
        }
        Ok(sources)
    }
}

/// One finding in the daemon's merged output stream, tagged with the
/// market it came from (the finding itself carries the seq).
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonFinding {
    /// The originating market.
    pub market: String,
    /// The finding, exactly as the market's own auditor emitted it.
    pub finding: LiveFinding,
}

impl std::fmt::Display for DaemonFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.market, self.finding)
    }
}

/// One market's closing audit artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonReport {
    /// The market.
    pub market: String,
    /// The closing fairness report — bit-identical to a batch audit of
    /// the same stream.
    pub report: FairnessReport,
    /// Effective hourly-wage statistics off the same index.
    pub wages: Option<WageStats>,
    /// Workers declared over the stream's lifetime.
    pub workers: usize,
    /// Tasks declared over the stream's lifetime.
    pub tasks: usize,
    /// Events ingested over the stream's lifetime (across restarts).
    pub events: usize,
    /// The checkpoint seq this market resumed from, if it did.
    pub resumed_from: Option<u64>,
}

/// A file tail: the open handle plus the raw bytes of a trailing
/// partial line. Bytes are carried raw (not as `&str`) so a poll that
/// catches a half-written multi-byte character waits for the rest
/// instead of aborting — the same discipline as `faircrowd watch`.
#[derive(Debug)]
struct MarketTail {
    file: std::fs::File,
    path: PathBuf,
    carry: Vec<u8>,
}

#[derive(Debug)]
struct Market {
    name: String,
    shard: usize,
    tail: Option<MarketTail>,
    /// Lines queued by [`AuditDaemon::feed_line`], drained each round.
    pending: Vec<String>,
    auditor: LiveAuditor,
    reader: JsonlReader,
    header_applied: bool,
    /// Physical lines still to skip before feeding — the consumed
    /// prefix of a resumed stream.
    skip_lines: u64,
    resumed_from: Option<u64>,
    /// The findings restored from the checkpoint, frozen at resume time
    /// (the auditor's own list keeps growing past them).
    restored: Vec<LiveFinding>,
    /// `events_seen` at the last checkpoint write.
    last_checkpoint: u64,
    failed: Option<String>,
}

struct RoundResult {
    market: String,
    findings: Vec<LiveFinding>,
    error: Option<String>,
    notices: Vec<String>,
}

/// The long-running multi-market audit service. See the
/// [module docs](self) for the full contract.
#[derive(Debug)]
pub struct AuditDaemon {
    config: DaemonConfig,
    markets: BTreeMap<String, Market>,
    notices: Vec<String>,
}

impl AuditDaemon {
    /// A daemon with no markets yet. `jobs` is clamped to at least 1.
    pub fn new(mut config: DaemonConfig) -> Self {
        config.jobs = config.jobs.max(1);
        AuditDaemon {
            config,
            markets: BTreeMap::new(),
            notices: Vec::new(),
        }
    }

    /// Open a daemon over a set of discovered sources — the
    /// `faircrowd serve <dir>` entry point. Each market resumes from
    /// its checkpoint when one loads cleanly, and otherwise replays its
    /// trace from the start (the fallback is a notice, never an error).
    pub fn open(config: DaemonConfig, sources: Vec<MarketSource>) -> Self {
        let mut daemon = AuditDaemon::new(config);
        for source in sources {
            daemon.add_source(source);
        }
        daemon
    }

    /// Register a file-backed market. A `.jsonl` file need not have
    /// content yet; it is tailed from the next [`AuditDaemon::poll`]. A
    /// `.fcb` file is a finished recording: it is decoded now and its
    /// records queued for the next poll in one shot (through the same
    /// line pipeline as a stream, so checkpoints and resume stay
    /// line-addressed and a restart skips the consumed prefix).
    pub fn add_source(&mut self, source: MarketSource) {
        if source.path.extension().and_then(|e| e.to_str()) == Some("fcb") {
            return self.add_recording(source);
        }
        let mut market = self.make_market(source.market.clone());
        market.tail = Some(MarketTail {
            file: std::fs::File::open(&source.path).unwrap_or_else(|_| {
                // Defer open errors to the poll loop, which reports
                // them per market; an empty placeholder keeps
                // construction infallible.
                std::fs::File::open("/dev/null").expect("null device")
            }),
            path: source.path.clone(),
            carry: Vec::new(),
        });
        // Re-open properly, reporting a missing file as a market
        // failure rather than silently tailing the null device.
        match std::fs::File::open(&source.path) {
            Ok(file) => {
                if let Some(tail) = &mut market.tail {
                    tail.file = file;
                }
            }
            Err(e) => {
                market.failed = Some(format!("cannot open `{}`: {e}", source.path.display()));
            }
        }
        if let Some(err) = &market.failed {
            self.notices
                .push(format!("market `{}` failed: {err}", market.name));
        }
        self.markets.insert(source.market, market);
    }

    /// Register a market backed by a finished `.fcb` recording: decode
    /// the whole file through the binary load gates and queue its
    /// records as JSONL lines for the next poll. Decode failures fail
    /// the market (named, positioned), never the daemon.
    fn add_recording(&mut self, source: MarketSource) {
        let mut market = self.make_market(source.market.clone());
        match std::fs::read(&source.path) {
            Ok(bytes) => match crate::persist::decode_bytes(&bytes) {
                Ok(trace) => {
                    market.pending.extend(
                        crate::persist::encode(&trace, crate::persist::TraceFormat::Jsonl)
                            .lines()
                            .map(str::to_owned),
                    );
                }
                Err(e) => market.failed = Some(format!("`{}`: {e}", source.path.display())),
            },
            Err(e) => {
                market.failed = Some(format!("cannot read `{}`: {e}", source.path.display()));
            }
        }
        if let Some(err) = &market.failed {
            self.notices
                .push(format!("market `{}` failed: {err}", market.name));
        }
        self.markets.insert(source.market, market);
    }

    /// Register (or get) a fed-lines market and queue one line for it —
    /// the consumption route for a multiplexed stream: route each line
    /// by its market tag. Lines are processed at the next
    /// [`AuditDaemon::poll`].
    pub fn feed_line(&mut self, market: &str, line: impl Into<String>) {
        if !self.markets.contains_key(market) {
            let created = self.make_market(market.to_owned());
            self.markets.insert(market.to_owned(), created);
        }
        self.markets
            .get_mut(market)
            .expect("just inserted")
            .pending
            .push(line.into());
    }

    /// Build a market, resuming from its checkpoint when one exists and
    /// loads cleanly.
    fn make_market(&mut self, name: String) -> Market {
        let shard = shard_of(&name);
        let fresh = |cfg: &AuditConfig| Market {
            name: name.clone(),
            shard,
            tail: None,
            pending: Vec::new(),
            auditor: LiveAuditor::new(cfg.clone()),
            reader: JsonlReader::new(),
            header_applied: false,
            skip_lines: 0,
            resumed_from: None,
            restored: Vec::new(),
            last_checkpoint: 0,
            failed: None,
        };
        let Some(dir) = &self.config.checkpoint_dir else {
            return fresh(&self.config.audit);
        };
        let path = checkpoint_path(dir, &name);
        if !path.exists() {
            return fresh(&self.config.audit);
        }
        let restored = checkpoint::load(&path)
            .and_then(|ckpt| Ok((LiveAuditor::resume(self.config.audit.clone(), &ckpt)?, ckpt)));
        match restored {
            Ok((auditor, ckpt)) => {
                self.notices.push(format!(
                    "resumed market `{name}` from checkpoint seq {} (skipping {} line(s))",
                    ckpt.seq(),
                    ckpt.source_lines()
                ));
                Market {
                    name: name.clone(),
                    shard,
                    tail: None,
                    pending: Vec::new(),
                    reader: JsonlReader::resume(ckpt.jsonl_header(), ckpt.source_lines() as usize),
                    header_applied: true,
                    skip_lines: ckpt.source_lines(),
                    resumed_from: Some(ckpt.seq()),
                    restored: auditor.findings().to_vec(),
                    last_checkpoint: ckpt.seq(),
                    failed: None,
                    auditor,
                }
            }
            Err(e) => {
                self.notices.push(format!(
                    "checkpoint for market `{name}` is unusable ({e}); replaying from the trace"
                ));
                fresh(&self.config.audit)
            }
        }
    }

    /// Number of registered markets.
    pub fn market_count(&self) -> usize {
        self.markets.len()
    }

    /// Markets that failed, with their errors.
    pub fn failed_markets(&self) -> Vec<(&str, &str)> {
        self.markets
            .values()
            .filter_map(|m| m.failed.as_deref().map(|e| (m.name.as_str(), e)))
            .collect()
    }

    /// Total physical lines consumed across all markets — the poll
    /// loop's progress measure (unchanged after a poll means the
    /// streams are idle).
    pub fn total_lines(&self) -> u64 {
        self.markets
            .values()
            .map(|m| m.reader.lines_fed() as u64)
            .sum()
    }

    /// Total events ingested across all markets, over each stream's
    /// whole lifetime (restored prefixes included).
    pub fn total_events(&self) -> u64 {
        self.markets
            .values()
            .map(|m| m.auditor.events_seen() as u64)
            .sum()
    }

    /// The findings a restarted daemon restored from checkpoints, in
    /// the same merged order [`AuditDaemon::poll`] uses — printed
    /// before fresh findings, a restarted `serve`'s output is the
    /// complete finding history of every stream.
    pub fn restored_findings(&self) -> Vec<DaemonFinding> {
        let mut out = Vec::new();
        for m in self.markets.values() {
            out.extend(m.restored.iter().map(|f| DaemonFinding {
                market: m.name.clone(),
                finding: f.clone(),
            }));
        }
        out
    }

    /// Operational notices (checkpoint resumes and fallbacks, write
    /// failures, per-market failures) accumulated since the last drain.
    pub fn take_notices(&mut self) -> Vec<String> {
        std::mem::take(&mut self.notices)
    }

    /// One poll round: every live market reads whatever its file grew
    /// by (plus any fed lines), decodes and ingests it, and checkpoints
    /// when its cadence is due — shards running concurrently on a
    /// scoped thread pool. Returns the round's findings in the merged
    /// deterministic order (market name, then per-market emission
    /// order). Per-market errors fail that market only.
    pub fn poll(&mut self) -> Vec<DaemonFinding> {
        let jobs = self.config.jobs;
        let config = &self.config;
        let mut shards: Vec<Vec<&mut Market>> = (0..jobs).map(|_| Vec::new()).collect();
        for m in self.markets.values_mut() {
            if m.failed.is_none() {
                shards[m.shard % jobs].push(m);
            }
        }
        let results: Vec<RoundResult> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .filter(|shard| !shard.is_empty())
                .map(|shard| {
                    s.spawn(move || {
                        shard
                            .into_iter()
                            .map(|m| run_market(m, config))
                            .collect::<Vec<RoundResult>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        self.merge(results)
    }

    /// Close every stream: feed any trailing partial line, finalize
    /// each auditor (end-of-stream findings), and write a final
    /// checkpoint per market so even a post-finalize restart restores
    /// the complete state. Returns the closing findings in the same
    /// merged order as [`AuditDaemon::poll`].
    pub fn finalize(&mut self) -> Vec<DaemonFinding> {
        let jobs = self.config.jobs;
        let config = &self.config;
        let mut shards: Vec<Vec<&mut Market>> = (0..jobs).map(|_| Vec::new()).collect();
        for m in self.markets.values_mut() {
            if m.failed.is_none() {
                shards[m.shard % jobs].push(m);
            }
        }
        let results: Vec<RoundResult> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .into_iter()
                .filter(|shard| !shard.is_empty())
                .map(|shard| {
                    s.spawn(move || {
                        shard
                            .into_iter()
                            .map(|m| finalize_market(m, config))
                            .collect::<Vec<RoundResult>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard thread panicked"))
                .collect()
        });
        self.merge(results)
    }

    /// Per-market closing artifacts, sorted by market name. Failed
    /// markets are skipped (their errors stay on
    /// [`AuditDaemon::failed_markets`]). A market that watched its
    /// whole stream is also referentially validated, exactly like
    /// `faircrowd watch`; a resumed market skips that gate — its prefix
    /// was validated before the checkpoint was taken, and the tail was
    /// validated event by event.
    pub fn reports(&self) -> Result<Vec<DaemonReport>, FaircrowdError> {
        let mut out = Vec::new();
        for m in self.markets.values() {
            if m.failed.is_some() {
                continue;
            }
            if m.resumed_from.is_none() {
                m.auditor.trace().ensure_valid().map_err(|e| match e {
                    FaircrowdError::InvalidTrace { problems } => FaircrowdError::InvalidTrace {
                        problems: problems
                            .into_iter()
                            .map(|p| format!("market `{}`: {p}", m.name))
                            .collect(),
                    },
                    other => other,
                })?;
            }
            let (report, wages) = m.auditor.final_artifacts(&AxiomId::ALL);
            out.push(DaemonReport {
                market: m.name.clone(),
                report,
                wages,
                workers: m.auditor.trace().workers.len(),
                tasks: m.auditor.trace().tasks.len(),
                events: m.auditor.events_seen(),
                resumed_from: m.resumed_from,
            });
        }
        Ok(out)
    }

    /// Merge one round's per-market results into the deterministic
    /// output order and fold notices/errors into daemon state.
    fn merge(&mut self, mut results: Vec<RoundResult>) -> Vec<DaemonFinding> {
        results.sort_by(|a, b| a.market.cmp(&b.market));
        let mut out = Vec::new();
        for r in results {
            self.notices.extend(r.notices);
            if let Some(err) = r.error {
                self.notices
                    .push(format!("market `{}` failed: {err}", r.market));
                if let Some(m) = self.markets.get_mut(&r.market) {
                    m.failed = Some(err);
                }
            }
            out.extend(r.findings.into_iter().map(|finding| DaemonFinding {
                market: r.market.clone(),
                finding,
            }));
        }
        out
    }
}

/// Stable market → shard pinning: FNV-1a over the market name. The
/// standard library's hasher is seeded per process, which would move
/// markets between shards across restarts; this hash never does.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h as usize
}

fn checkpoint_path(dir: &Path, market: &str) -> PathBuf {
    dir.join(format!("{market}.checkpoint.json"))
}

/// One market's share of a poll round, run inside its shard thread:
/// tail the file, feed every complete line, checkpoint if due.
fn run_market(m: &mut Market, config: &DaemonConfig) -> RoundResult {
    let mut findings = Vec::new();
    let mut notices = Vec::new();
    let mut error = None;

    let mut lines: Vec<String> = std::mem::take(&mut m.pending);
    if let Some(tail) = &mut m.tail {
        match read_new_lines(tail) {
            Ok(fresh) => lines.extend(fresh),
            Err(e) => error = Some(e),
        }
    }

    if error.is_none() {
        for line in lines {
            match feed_one(m, &line) {
                Ok(mut out) => findings.append(&mut out),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
    }

    if error.is_none() {
        maybe_checkpoint(m, config, &mut notices);
    }

    RoundResult {
        market: m.name.clone(),
        findings,
        error,
        notices,
    }
}

/// One market's share of finalization: flush a trailing partial line,
/// finalize the auditor, write the final checkpoint.
fn finalize_market(m: &mut Market, config: &DaemonConfig) -> RoundResult {
    let mut findings = Vec::new();
    let mut notices = Vec::new();
    let mut error = None;

    // A last line without a trailing newline is still a record.
    let carry = m.tail.as_mut().map(|t| std::mem::take(&mut t.carry));
    if let Some(carry) = carry {
        if carry.iter().any(|b| !b.is_ascii_whitespace()) {
            match String::from_utf8(carry) {
                Ok(line) => match feed_one(m, &line) {
                    Ok(mut out) => findings.append(&mut out),
                    Err(e) => error = Some(e),
                },
                Err(_) => {
                    error = Some(format!(
                        "line {}: not valid UTF-8",
                        m.reader.lines_fed() + 1
                    ));
                }
            }
        }
    }

    if error.is_none() {
        // Snapshot BEFORE finalizing: end-of-stream is this run's
        // local judgment, not a property of the log. A restart
        // re-derives the closing findings from the restored state — or
        // keeps ingesting, if the market grew in the meantime.
        if let Some(dir) = &config.checkpoint_dir {
            let path = checkpoint_path(dir, &m.name);
            if let Err(e) = checkpoint::save_auditor(&m.auditor, m.reader.lines_fed() as u64, &path)
            {
                notices.push(format!(
                    "market `{}`: final checkpoint write failed: {e}",
                    m.name
                ));
            } else {
                m.last_checkpoint = m.auditor.events_seen() as u64;
            }
        }
        findings.extend(m.auditor.finalize());
    }

    RoundResult {
        market: m.name.clone(),
        findings,
        error,
        notices,
    }
}

/// Feed one line: skip it if it belongs to a resumed prefix, apply the
/// header once decoded, route records into the auditor. Errors carry
/// the absolute line number.
fn feed_one(m: &mut Market, line: &str) -> Result<Vec<LiveFinding>, String> {
    if m.skip_lines > 0 {
        m.skip_lines -= 1;
        return Ok(Vec::new());
    }
    let record = m.reader.feed_line(line).map_err(|e| e.to_string())?;
    if !m.header_applied {
        if let Some(header) = m.reader.header() {
            m.auditor.apply_header(header);
            m.header_applied = true;
        }
    }
    let Some(record) = record else {
        return Ok(Vec::new());
    };
    m.auditor.apply_record(record).map_err(|e| {
        // Ingest-order defects don't know the file position; tag them
        // with the line the reader just consumed, like `watch` does.
        let lineno = m.reader.lines_fed();
        match e {
            FaircrowdError::InvalidTrace { problems } => problems
                .into_iter()
                .map(|p| format!("line {lineno}: {p}"))
                .collect::<Vec<_>>()
                .join("; "),
            other => format!("line {lineno}: {other}"),
        }
    })
}

/// Snapshot the market if its checkpoint cadence is due.
fn maybe_checkpoint(m: &mut Market, config: &DaemonConfig, notices: &mut Vec<String>) {
    let Some(dir) = &config.checkpoint_dir else {
        return;
    };
    let seen = m.auditor.events_seen() as u64;
    if seen < m.last_checkpoint + config.checkpoint_every.max(1) {
        return;
    }
    let path = checkpoint_path(dir, &m.name);
    match checkpoint::save_auditor(&m.auditor, m.reader.lines_fed() as u64, &path) {
        Ok(()) => m.last_checkpoint = seen,
        Err(e) => notices.push(format!("market `{}`: checkpoint write failed: {e}", m.name)),
    }
}

/// Read whatever the file grew by since the last poll and split it
/// into complete lines, carrying a trailing partial line (raw bytes)
/// to the next round.
fn read_new_lines(tail: &mut MarketTail) -> Result<Vec<String>, String> {
    let mut buf = Vec::new();
    tail.file
        .read_to_end(&mut buf)
        .map_err(|e| format!("cannot read `{}`: {e}", tail.path.display()))?;
    if buf.is_empty() {
        return Ok(Vec::new());
    }
    tail.carry.extend_from_slice(&buf);
    let mut lines = Vec::new();
    let mut start = 0;
    while let Some(nl) = tail.carry[start..].iter().position(|&b| b == b'\n') {
        let end = start + nl;
        let line = String::from_utf8(tail.carry[start..end].to_vec())
            .map_err(|_| format!("`{}`: line is not valid UTF-8", tail.path.display()))?;
        lines.push(line);
        start = end + 1;
    }
    tail.carry.drain(..start);
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use crate::persist;
    use faircrowd_model::contribution::Contribution;
    use faircrowd_model::trace::Trace;

    /// A small trace with A1 + A3 violations.
    fn violating_trace() -> Trace {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 10)]);
        show(&mut trace, 1, 0, 0);
        let s0 = submit(&mut trace, 100, 0, 0, Contribution::Label(1));
        let _s1 = submit(&mut trace, 110, 0, 1, Contribution::Label(1));
        pay(&mut trace, 200, s0, 0, 10);
        trace
    }

    /// The reference: one uninterrupted single-stream audit.
    fn reference(trace: &Trace) -> (Vec<LiveFinding>, crate::FairnessReport) {
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        let mut findings = auditor.ingest_trace(trace).unwrap();
        findings.extend(auditor.finalize());
        (findings, auditor.final_report())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc_daemon_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn two_markets_match_their_single_stream_references() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let mut daemon = AuditDaemon::new(DaemonConfig {
            jobs: 4,
            ..DaemonConfig::default()
        });
        for market in ["alpha", "beta"] {
            for line in jsonl.lines() {
                daemon.feed_line(market, line);
            }
        }
        let mut merged = daemon.poll();
        merged.extend(daemon.finalize());
        let (want_findings, want_report) = reference(&trace);
        for market in ["alpha", "beta"] {
            let got: Vec<&LiveFinding> = merged
                .iter()
                .filter(|f| f.market == market)
                .map(|f| &f.finding)
                .collect();
            assert_eq!(got.len(), want_findings.len(), "{market}");
            for (g, w) in got.iter().zip(&want_findings) {
                assert_eq!(*g, w, "{market}");
            }
        }
        let reports = daemon.reports().unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.report, want_report, "{}", r.market);
            assert_eq!(r.resumed_from, None);
        }
    }

    #[test]
    fn merged_order_is_market_sorted_and_emission_ordered() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let mut daemon = AuditDaemon::new(DaemonConfig {
            jobs: 3,
            ..DaemonConfig::default()
        });
        // Interleave the feeds; the merge must not care.
        for line in jsonl.lines() {
            for market in ["zeta", "alpha", "mid"] {
                daemon.feed_line(market, line);
            }
        }
        let polled = daemon.poll();
        let closed = daemon.finalize();
        for round in [&polled, &closed] {
            let order: Vec<&str> = round.iter().map(|f| f.market.as_str()).collect();
            let mut sorted = order.clone();
            sorted.sort();
            assert_eq!(order, sorted, "each round groups markets in sorted order");
        }
        let merged: Vec<DaemonFinding> = polled.into_iter().chain(closed).collect();
        // Within a market, the subsequence equals the reference stream.
        let (want, _) = reference(&trace);
        let alpha: Vec<&LiveFinding> = merged
            .iter()
            .filter(|f| f.market == "alpha")
            .map(|f| &f.finding)
            .collect();
        assert_eq!(alpha.len(), want.len());
    }

    #[test]
    fn checkpoint_restart_resumes_without_replaying() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let lines: Vec<&str> = jsonl.lines().collect();
        let dir = temp_dir("resume");
        let config = DaemonConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            ..DaemonConfig::default()
        };
        // First life: all but the last two events, then the process
        // "dies". (The cut must land after at least one event line —
        // checkpoints are due by ingested-event cadence, not by line.)
        let mut first = AuditDaemon::new(config.clone());
        let cut = lines.len() - 2;
        for line in &lines[..cut] {
            first.feed_line("m", *line);
        }
        let before_kill = first.poll();
        assert!(first.take_notices().iter().all(|n| !n.contains("failed")),);
        drop(first);
        // Second life: resume, replay the WHOLE stream (a tailer
        // re-reads the file from the start); the consumed prefix is
        // skipped by line count, the rest ingested.
        let mut second = AuditDaemon::new(config);
        for line in &lines {
            second.feed_line("m", *line);
        }
        let notices_checked = {
            let mut merged = second.poll();
            merged.extend(second.finalize());
            let notices = second.take_notices();
            assert!(
                notices.iter().any(|n| n.contains("resumed market `m`")),
                "{notices:?}"
            );
            merged
        };
        let restored = second.restored_findings();
        let (want_findings, want_report) = reference(&trace);
        let complete: Vec<&LiveFinding> = restored
            .iter()
            .map(|f| &f.finding)
            .chain(notices_checked.iter().map(|f| &f.finding))
            .collect();
        assert_eq!(complete.len(), want_findings.len());
        for (g, w) in complete.iter().zip(&want_findings) {
            assert_eq!(*g, w);
        }
        // Restored findings cover exactly what the first life emitted.
        assert_eq!(restored.len(), before_kill.len());
        let reports = second.reports().unwrap();
        assert_eq!(reports[0].report, want_report);
        assert!(reports[0].resumed_from.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_full_replay() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let dir = temp_dir("fallback");
        std::fs::write(dir.join("m.checkpoint.json"), "{\"schema\": \"garb").unwrap();
        let config = DaemonConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1_000_000,
            ..DaemonConfig::default()
        };
        let mut daemon = AuditDaemon::new(config);
        for line in jsonl.lines() {
            daemon.feed_line("m", line);
        }
        let mut merged = daemon.poll();
        merged.extend(daemon.finalize());
        let notices = daemon.take_notices();
        assert!(
            notices
                .iter()
                .any(|n| n.contains("unusable") && n.contains("replaying from the trace")),
            "{notices:?}"
        );
        let (want_findings, want_report) = reference(&trace);
        assert_eq!(merged.len(), want_findings.len());
        assert_eq!(daemon.reports().unwrap()[0].report, want_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_broken_market_fails_alone() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let mut daemon = AuditDaemon::new(DaemonConfig::default());
        for line in jsonl.lines() {
            daemon.feed_line("good", line);
        }
        daemon.feed_line("bad", "{not json");
        let mut merged = daemon.poll();
        merged.extend(daemon.finalize());
        let failed = daemon.failed_markets();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, "bad");
        assert!(failed[0].1.contains("line 1"), "{}", failed[0].1);
        let (want, _) = reference(&trace);
        assert_eq!(merged.len(), want.len(), "good market is unaffected");
        assert_eq!(daemon.reports().unwrap().len(), 1);
    }

    #[test]
    fn shard_pinning_is_stable() {
        assert_eq!(shard_of("market-1"), shard_of("market-1"));
        // FNV-1a of distinct names is distinct here (sanity, not a
        // collision guarantee).
        assert_ne!(shard_of("market-1") % 7, shard_of("market-2") % 7);
    }

    #[test]
    fn file_backed_markets_tail_growing_files() {
        let trace = violating_trace();
        let jsonl = persist::encode(&trace, persist::TraceFormat::Jsonl);
        let lines: Vec<&str> = jsonl.lines().collect();
        let dir = temp_dir("tail");
        let path = dir.join("m.jsonl");
        let half = lines.len() / 2;
        std::fs::write(&path, format!("{}\n", lines[..half].join("\n"))).unwrap();
        let mut daemon = AuditDaemon::new(DaemonConfig::default());
        daemon.add_source(MarketSource {
            market: "m".into(),
            path: path.clone(),
        });
        let mut merged = daemon.poll();
        // The file grows; a later poll picks up the rest.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        use std::io::Write;
        writeln!(file, "{}", lines[half..].join("\n")).unwrap();
        drop(file);
        merged.extend(daemon.poll());
        merged.extend(daemon.finalize());
        let (want, want_report) = reference(&trace);
        assert_eq!(merged.len(), want.len());
        for (g, w) in merged.iter().zip(&want) {
            assert_eq!(&g.finding, w);
        }
        assert_eq!(daemon.reports().unwrap()[0].report, want_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discover_finds_both_stream_and_recording_markets() {
        let trace = violating_trace();
        let dir = temp_dir("discover");
        std::fs::write(
            dir.join("stream.jsonl"),
            persist::encode(&trace, persist::TraceFormat::Jsonl),
        )
        .unwrap();
        std::fs::write(
            dir.join("recording.fcb"),
            persist::encode_bytes(&trace, persist::TraceFormat::Binary),
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let sources = MarketSource::discover(dir.to_str().unwrap()).unwrap();
        let names: Vec<&str> = sources.iter().map(|s| s.market.as_str()).collect();
        assert_eq!(names, ["recording", "stream"], "sorted, txt ignored");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mixed_format_market_is_a_named_error_not_a_silent_skip() {
        let trace = violating_trace();
        let dir = temp_dir("mixed");
        std::fs::write(
            dir.join("m.jsonl"),
            persist::encode(&trace, persist::TraceFormat::Jsonl),
        )
        .unwrap();
        std::fs::write(
            dir.join("m.fcb"),
            persist::encode_bytes(&trace, persist::TraceFormat::Binary),
        )
        .unwrap();
        let err = MarketSource::discover(dir.to_str().unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("market `m`"), "{msg}");
        assert!(msg.contains("m.jsonl") && msg.contains("m.fcb"), "{msg}");
        assert!(msg.contains("keep exactly one"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recording_market_matches_the_single_stream_reference() {
        let trace = violating_trace();
        let dir = temp_dir("fcb");
        let path = dir.join("m.fcb");
        std::fs::write(
            &path,
            persist::encode_bytes(&trace, persist::TraceFormat::Binary),
        )
        .unwrap();
        let mut daemon = AuditDaemon::new(DaemonConfig::default());
        daemon.add_source(MarketSource {
            market: "m".into(),
            path,
        });
        let mut merged = daemon.poll();
        merged.extend(daemon.finalize());
        let (want, want_report) = reference(&trace);
        assert_eq!(merged.len(), want.len());
        for (g, w) in merged.iter().zip(&want) {
            assert_eq!(&g.finding, w);
        }
        assert_eq!(daemon.reports().unwrap()[0].report, want_report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_recording_fails_its_market_alone() {
        let trace = violating_trace();
        let dir = temp_dir("badfcb");
        let mut bytes = persist::encode_bytes(&trace, persist::TraceFormat::Binary);
        bytes.truncate(bytes.len() / 2);
        std::fs::write(dir.join("bad.fcb"), &bytes).unwrap();
        std::fs::write(
            dir.join("good.jsonl"),
            persist::encode(&trace, persist::TraceFormat::Jsonl),
        )
        .unwrap();
        let mut daemon = AuditDaemon::new(DaemonConfig::default());
        for source in MarketSource::discover(dir.to_str().unwrap()).unwrap() {
            daemon.add_source(source);
        }
        let notices = daemon.take_notices();
        assert!(
            notices
                .iter()
                .any(|n| n.contains("bad") && n.contains("failed")),
            "{notices:?}"
        );
        let mut merged = daemon.poll();
        merged.extend(daemon.finalize());
        let failed = daemon.failed_markets();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, "bad");
        assert!(failed[0].1.contains("bad.fcb"), "{}", failed[0].1);
        let (want, _) = reference(&trace);
        assert_eq!(merged.len(), want.len(), "good market is unaffected");
        assert_eq!(daemon.reports().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
