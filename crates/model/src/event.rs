//! The audit-log event vocabulary.
//!
//! Every fairness axiom in the paper quantifies over *observable platform
//! behaviour*: which tasks were shown to whom (Axioms 1–2), who was paid
//! what for which contribution (Axiom 3), whether malicious behaviour could
//! be detected (Axiom 4), who was interrupted mid-task (Axiom 5), and what
//! was disclosed (Axioms 6–7). The simulator emits this log; the audit
//! engine replays it. An auditable platform is precisely one that keeps
//! such a log.

use crate::disclosure::DisclosureItem;
use crate::ids::{RequesterId, SubmissionId, TaskId, WorkerId};
use crate::money::Credits;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a task was cancelled before all assignments completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CancelReason {
    /// The requester reached the target number of acceptable responses
    /// (the survey-overposting scenario of §3.1.1).
    TargetReached,
    /// The campaign budget ran out.
    BudgetExhausted,
    /// The requester withdrew the task for other reasons.
    Withdrawn,
}

/// Why a worker left the platform for good.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuitReason {
    /// Accumulated frustration with unfair/opaque treatment (the retention
    /// mechanism of §1 and §4.1).
    Frustration,
    /// Unrelated natural churn.
    NaturalChurn,
}

/// One entry in the audit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A requester posted a task.
    TaskPosted {
        /// The task.
        task: TaskId,
        /// The posting requester.
        requester: RequesterId,
    },
    /// The platform made a task visible to a worker (exposure). Axioms 1–2
    /// quantify over exactly these events.
    TaskVisible {
        /// The task shown.
        task: TaskId,
        /// The worker it was shown to.
        worker: WorkerId,
    },
    /// A worker accepted (claimed) a task assignment.
    TaskAccepted {
        /// The task.
        task: TaskId,
        /// The accepting worker.
        worker: WorkerId,
    },
    /// A worker began working.
    WorkStarted {
        /// The task.
        task: TaskId,
        /// The worker.
        worker: WorkerId,
    },
    /// A worker submitted a contribution.
    SubmissionReceived {
        /// The submission.
        submission: SubmissionId,
        /// The task answered.
        task: TaskId,
        /// The submitting worker.
        worker: WorkerId,
    },
    /// The requester approved a submission.
    SubmissionApproved {
        /// The submission.
        submission: SubmissionId,
        /// The task.
        task: TaskId,
        /// The worker.
        worker: WorkerId,
    },
    /// The requester rejected a submission. `feedback` carries the
    /// explanation if one was given — rejections without feedback are the
    /// requester-opacity scenario of §3.1.2.
    SubmissionRejected {
        /// The submission.
        submission: SubmissionId,
        /// The task.
        task: TaskId,
        /// The worker.
        worker: WorkerId,
        /// The explanation given to the worker, if any.
        feedback: Option<String>,
    },
    /// Money actually moved to a worker.
    PaymentIssued {
        /// The paid submission.
        submission: SubmissionId,
        /// The task.
        task: TaskId,
        /// The paid worker.
        worker: WorkerId,
        /// The amount paid.
        amount: Credits,
    },
    /// A requester promised a bonus.
    BonusPromised {
        /// The worker promised to.
        worker: WorkerId,
        /// The promising requester.
        requester: RequesterId,
        /// The promised amount.
        amount: Credits,
    },
    /// A promised bonus was paid.
    BonusPaid {
        /// The worker paid.
        worker: WorkerId,
        /// The paying requester.
        requester: RequesterId,
        /// The amount.
        amount: Credits,
    },
    /// A promised bonus was *not* paid (the reneging scenario of §3.1.1).
    BonusReneged {
        /// The stiffed worker.
        worker: WorkerId,
        /// The reneging requester.
        requester: RequesterId,
        /// The amount promised but withheld.
        amount: Credits,
    },
    /// A task was cancelled.
    TaskCanceled {
        /// The task.
        task: TaskId,
        /// Why.
        reason: CancelReason,
    },
    /// A worker's in-progress work was cut off by a cancellation — the
    /// Axiom 5 violation witness.
    WorkInterrupted {
        /// The task.
        task: TaskId,
        /// The interrupted worker.
        worker: WorkerId,
        /// Time the worker had already invested.
        invested: SimDuration,
        /// Whether the worker was compensated for the partial work.
        compensated: bool,
    },
    /// A detection mechanism flagged a worker as suspicious (Axiom 4).
    WorkerFlagged {
        /// The flagged worker.
        worker: WorkerId,
        /// Suspicion score in `[0, 1]`.
        score: f64,
        /// Which detector fired.
        detector: String,
    },
    /// The platform showed a disclosure item to a worker.
    DisclosureShown {
        /// The viewing worker.
        worker: WorkerId,
        /// What was shown.
        item: DisclosureItem,
    },
    /// A worker came online.
    SessionStarted {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker went offline.
    SessionEnded {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker left the platform permanently.
    WorkerQuit {
        /// The worker.
        worker: WorkerId,
        /// Why.
        reason: QuitReason,
    },
}

impl EventKind {
    /// Short tag for reports and counting.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TaskPosted { .. } => "task_posted",
            EventKind::TaskVisible { .. } => "task_visible",
            EventKind::TaskAccepted { .. } => "task_accepted",
            EventKind::WorkStarted { .. } => "work_started",
            EventKind::SubmissionReceived { .. } => "submission_received",
            EventKind::SubmissionApproved { .. } => "submission_approved",
            EventKind::SubmissionRejected { .. } => "submission_rejected",
            EventKind::PaymentIssued { .. } => "payment_issued",
            EventKind::BonusPromised { .. } => "bonus_promised",
            EventKind::BonusPaid { .. } => "bonus_paid",
            EventKind::BonusReneged { .. } => "bonus_reneged",
            EventKind::TaskCanceled { .. } => "task_canceled",
            EventKind::WorkInterrupted { .. } => "work_interrupted",
            EventKind::WorkerFlagged { .. } => "worker_flagged",
            EventKind::DisclosureShown { .. } => "disclosure_shown",
            EventKind::SessionStarted { .. } => "session_started",
            EventKind::SessionEnded { .. } => "session_ended",
            EventKind::WorkerQuit { .. } => "worker_quit",
        }
    }

    /// The worker an event concerns, if any.
    pub fn worker(&self) -> Option<WorkerId> {
        match self {
            EventKind::TaskVisible { worker, .. }
            | EventKind::TaskAccepted { worker, .. }
            | EventKind::WorkStarted { worker, .. }
            | EventKind::SubmissionReceived { worker, .. }
            | EventKind::SubmissionApproved { worker, .. }
            | EventKind::SubmissionRejected { worker, .. }
            | EventKind::PaymentIssued { worker, .. }
            | EventKind::BonusPromised { worker, .. }
            | EventKind::BonusPaid { worker, .. }
            | EventKind::BonusReneged { worker, .. }
            | EventKind::WorkInterrupted { worker, .. }
            | EventKind::WorkerFlagged { worker, .. }
            | EventKind::DisclosureShown { worker, .. }
            | EventKind::SessionStarted { worker }
            | EventKind::SessionEnded { worker }
            | EventKind::WorkerQuit { worker, .. } => Some(*worker),
            EventKind::TaskPosted { .. } | EventKind::TaskCanceled { .. } => None,
        }
    }

    /// The task an event concerns, if any.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            EventKind::TaskPosted { task, .. }
            | EventKind::TaskVisible { task, .. }
            | EventKind::TaskAccepted { task, .. }
            | EventKind::WorkStarted { task, .. }
            | EventKind::SubmissionReceived { task, .. }
            | EventKind::SubmissionApproved { task, .. }
            | EventKind::SubmissionRejected { task, .. }
            | EventKind::PaymentIssued { task, .. }
            | EventKind::TaskCanceled { task, .. }
            | EventKind::WorkInterrupted { task, .. } => Some(*task),
            _ => None,
        }
    }
}

/// The first integrity defect found in an event log: *which* entry broke
/// the log invariants, and how. Streaming consumers (the live auditor,
/// `faircrowd watch`) surface these as they ingest, so an operator sees
/// the offending seq — not just "the log is bad somewhere".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogDefect {
    /// The entry at `index` does not carry the dense sequence number the
    /// log invariant requires (a gap, a duplicate, or out-of-order
    /// arrival).
    SparseSeq {
        /// Log position (0-based) of the offending entry.
        index: usize,
        /// The sequence number a dense log must carry there.
        expected: u64,
        /// The sequence number actually found.
        found: u64,
    },
    /// The entry at `index` is timestamped earlier than its predecessor.
    TimeRegression {
        /// Log position (0-based) of the offending entry.
        index: usize,
        /// That entry's sequence number.
        seq: u64,
        /// The predecessor's timestamp.
        previous: SimTime,
        /// The regressing timestamp found.
        found: SimTime,
    },
}

impl LogDefect {
    /// Log position (0-based) of the offending entry.
    pub fn index(&self) -> usize {
        match self {
            LogDefect::SparseSeq { index, .. } | LogDefect::TimeRegression { index, .. } => *index,
        }
    }
}

impl fmt::Display for LogDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDefect::SparseSeq {
                index,
                expected,
                found,
            } => write!(
                f,
                "event at log position {index} carries seq {found}, expected the dense seq \
                 {expected}"
            ),
            LogDefect::TimeRegression {
                index,
                seq,
                previous,
                found,
            } => write!(
                f,
                "event seq {seq} at log position {index} is timestamped {found}, regressing \
                 behind the preceding {previous}"
            ),
        }
    }
}

/// A timestamped, sequence-numbered audit-log entry. The sequence number
/// makes ordering total even within one tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// When the event happened.
    pub time: SimTime,
    /// Monotonic sequence number within the log.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// An append-only audit log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; the log assigns the sequence number.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.events.len() as u64;
        self.events.push(Event { time, seq, kind });
    }

    /// Rebuild a log from fully-formed events — the deserialisation
    /// path. Sequence numbers are taken **as given**, not re-assigned,
    /// so a persisted log that was tampered with (or truncated in the
    /// middle) still fails [`EventLog::check_integrity`] instead of
    /// being silently repaired.
    pub fn from_events(events: Vec<Event>) -> Self {
        EventLog { events }
    }

    /// Append one fully-formed event **as given** — the streaming
    /// ingestion path. Like [`EventLog::from_events`], the carried
    /// sequence number is kept, not re-assigned; callers that want the
    /// invariants enforced at arrival (the live auditor does) check
    /// [`EventLog::validate`]-style conditions before pushing.
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate in log order.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.events.iter()
    }

    /// All events as a slice.
    pub fn as_slice(&self) -> &[Event] {
        &self.events
    }

    /// Count events whose kind matches a predicate.
    pub fn count_where<F: Fn(&EventKind) -> bool>(&self, pred: F) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Verify the log invariants — sequence numbers dense and timestamps
    /// non-decreasing — and report the first defect **with its position,
    /// seq and timestamps** ([`LogDefect`]), so streaming consumers can
    /// say exactly which entry broke monotonicity.
    pub fn validate(&self) -> Result<(), LogDefect> {
        let mut last_time = SimTime::ZERO;
        for (i, e) in self.events.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(LogDefect::SparseSeq {
                    index: i,
                    expected: i as u64,
                    found: e.seq,
                });
            }
            if e.time < last_time {
                return Err(LogDefect::TimeRegression {
                    index: i,
                    seq: e.seq,
                    previous: last_time,
                    found: e.time,
                });
            }
            last_time = e.time;
        }
        Ok(())
    }

    /// [`EventLog::validate`] reduced to the first violated position —
    /// the original coarse form, kept for callers that only branch on
    /// where the log broke.
    pub fn check_integrity(&self) -> Result<(), usize> {
        self.validate().map_err(|d| d.index())
    }
}

impl<'a> IntoIterator for &'a EventLog {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(kinds: Vec<EventKind>) -> EventLog {
        let mut log = EventLog::new();
        for (i, k) in kinds.into_iter().enumerate() {
            log.push(SimTime::from_secs(i as u64), k);
        }
        log
    }

    #[test]
    fn push_assigns_dense_seq() {
        let log = log_with(vec![
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
            EventKind::SessionEnded {
                worker: WorkerId::new(0),
            },
        ]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.as_slice()[0].seq, 0);
        assert_eq!(log.as_slice()[1].seq, 1);
        assert!(log.check_integrity().is_ok());
    }

    #[test]
    fn integrity_detects_time_regression() {
        let mut log = EventLog::new();
        log.push(
            SimTime::from_secs(10),
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
        );
        log.push(
            SimTime::from_secs(5),
            EventKind::SessionEnded {
                worker: WorkerId::new(0),
            },
        );
        assert_eq!(log.check_integrity(), Err(1));
        let defect = log.validate().unwrap_err();
        assert_eq!(
            defect,
            LogDefect::TimeRegression {
                index: 1,
                seq: 1,
                previous: SimTime::from_secs(10),
                found: SimTime::from_secs(5),
            }
        );
        let text = defect.to_string();
        assert!(text.contains("seq 1"), "{text}");
        assert!(text.contains("position 1"), "{text}");
    }

    #[test]
    fn validate_names_the_sparse_seq() {
        let mut log = EventLog::new();
        log.push(
            SimTime::from_secs(1),
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
        );
        // A sparse seq arriving mid-stream, as a tampered/truncated log
        // or an out-of-order producer would deliver it.
        log.push_event(Event {
            time: SimTime::from_secs(2),
            seq: 7,
            kind: EventKind::SessionEnded {
                worker: WorkerId::new(0),
            },
        });
        let defect = log.validate().unwrap_err();
        assert_eq!(
            defect,
            LogDefect::SparseSeq {
                index: 1,
                expected: 1,
                found: 7,
            }
        );
        let text = defect.to_string();
        assert!(text.contains("seq 7"), "{text}");
        assert!(text.contains("expected the dense seq 1"), "{text}");
        assert_eq!(defect.index(), 1);
    }

    #[test]
    fn push_event_keeps_the_carried_seq() {
        let mut log = EventLog::new();
        log.push_event(Event {
            time: SimTime::from_secs(0),
            seq: 0,
            kind: EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
        });
        assert_eq!(log.len(), 1);
        assert!(log.validate().is_ok());
    }

    #[test]
    fn worker_and_task_extraction() {
        let k = EventKind::PaymentIssued {
            submission: SubmissionId::new(1),
            task: TaskId::new(2),
            worker: WorkerId::new(3),
            amount: Credits::from_cents(10),
        };
        assert_eq!(k.worker(), Some(WorkerId::new(3)));
        assert_eq!(k.task(), Some(TaskId::new(2)));
        let p = EventKind::TaskPosted {
            task: TaskId::new(0),
            requester: RequesterId::new(0),
        };
        assert_eq!(p.worker(), None);
        assert_eq!(p.task(), Some(TaskId::new(0)));
    }

    #[test]
    fn count_where_filters() {
        let log = log_with(vec![
            EventKind::TaskVisible {
                task: TaskId::new(0),
                worker: WorkerId::new(0),
            },
            EventKind::TaskVisible {
                task: TaskId::new(0),
                worker: WorkerId::new(1),
            },
            EventKind::SessionStarted {
                worker: WorkerId::new(0),
            },
        ]);
        assert_eq!(
            log.count_where(|k| matches!(k, EventKind::TaskVisible { .. })),
            2
        );
        assert_eq!(log.count_where(|k| k.tag() == "session_started"), 1);
    }

    #[test]
    fn tags_are_stable() {
        let k = EventKind::WorkInterrupted {
            task: TaskId::new(0),
            worker: WorkerId::new(0),
            invested: SimDuration::from_mins(3),
            compensated: false,
        };
        assert_eq!(k.tag(), "work_interrupted");
    }
}
