//! E3 — Malicious-worker detection.
//!
//! Paper source: §2.1 (Vuurens et al. [20]: "nearly 40% of the answers
//! they received from AMT were from malicious users"), Axiom 4.
//!
//! A labeling market runs with increasing malicious fractions (including
//! the paper's 40% point). For each trace we evaluate four detectors
//! offline against the simulator's ground truth — agreement/repetition
//! scoring (Vuurens-style), the same plus the speed signal, Dawid–Skene
//! reliability thresholding, and gold-question screening — and measure
//! precision/recall/F1 plus the aggregated-answer accuracy before and
//! after filtering the flagged workers out of the majority vote.

use faircrowd_bench::{banner, f3, mean, presets, run_seeds, TextTable};
use faircrowd_model::contribution::Contribution;
use faircrowd_model::ids::WorkerId;
use faircrowd_model::task::TaskKind;
use faircrowd_model::trace::Trace;
use faircrowd_quality::answers::AnswerSet;
use faircrowd_quality::dawid_skene::DawidSkene;
use faircrowd_quality::gold::GoldSet;
use faircrowd_quality::majority::{majority_vote, weighted_majority_vote};
use faircrowd_quality::metrics::{label_accuracy, DetectionCounts};
use faircrowd_quality::spam::SpamDetector;
use std::collections::{BTreeMap, BTreeSet};

/// Rebuild the detection inputs from a trace.
fn answers_of(
    trace: &Trace,
) -> (
    AnswerSet,
    BTreeMap<
        WorkerId,
        Vec<(
            faircrowd_model::time::SimDuration,
            faircrowd_model::time::SimDuration,
        )>,
    >,
) {
    let mut set = AnswerSet::new(2);
    let mut durations: BTreeMap<WorkerId, Vec<_>> = BTreeMap::new();
    for s in &trace.submissions {
        if let Contribution::Label(l) = s.contribution {
            if let Some(task) = trace.task(s.task) {
                if matches!(task.kind, TaskKind::Labeling { .. }) {
                    set.record(s.worker, s.task, l);
                    durations
                        .entry(s.worker)
                        .or_default()
                        .push((s.work_duration(), task.est_duration));
                }
            }
        }
    }
    (set, durations)
}

struct DetectorRun {
    name: &'static str,
    flagged: BTreeSet<WorkerId>,
}

fn run_detectors(trace: &Trace) -> Vec<DetectorRun> {
    let (answers, durations) = answers_of(trace);
    let mut out = Vec::new();

    let agreement_only = SpamDetector {
        w_speed: 0.0,
        ..SpamDetector::default()
    };
    out.push(DetectorRun {
        name: "agreement+repetition",
        flagged: agreement_only.flag(&answers, None).into_iter().collect(),
    });
    out.push(DetectorRun {
        name: "agreement+rep+speed",
        flagged: SpamDetector::default()
            .flag(&answers, Some(&durations))
            .into_iter()
            .collect(),
    });

    // Dawid–Skene reliability threshold.
    let ds = DawidSkene::default().run(&answers);
    out.push(DetectorRun {
        name: "dawid-skene (rel<.6)",
        flagged: ds
            .reliability
            .iter()
            .filter(|(_, &r)| r < 0.6)
            .map(|(&w, _)| w)
            .collect(),
    });

    // Gold screening: every 5th task doubles as a gold question (20%
    // gold is the high end of realistic honeypot budgets).
    let mut gold = GoldSet::new();
    for (i, (&task, &label)) in trace.ground_truth.true_labels.iter().enumerate() {
        if i % 5 == 0 {
            gold.insert(task, label);
        }
    }
    out.push(DetectorRun {
        name: "gold 20% (acc<.6)",
        flagged: gold.flag_workers(&answers, 0.6, 3).into_iter().collect(),
    });

    out
}

fn main() {
    banner(
        "E3",
        "malicious-worker detection across spam levels",
        "paper §2.1 [20] (the 40% observation); Axiom 4",
    );

    let mut table = TextTable::new([
        "spam-frac",
        "detector",
        "precision",
        "recall",
        "F1",
        "acc-raw",
        "acc-filtered",
    ])
    .numeric();

    for fraction in [0.1, 0.2, 0.4, 0.6] {
        let traces = run_seeds(|seed| presets::spam_market(seed, fraction));
        // detector name -> per-seed measurements
        let mut rows: BTreeMap<&'static str, Vec<[f64; 5]>> = BTreeMap::new();
        for trace in &traces {
            let (answers, _) = answers_of(trace);
            let universe: BTreeSet<WorkerId> = trace.submissions.iter().map(|s| s.worker).collect();
            let malicious: BTreeSet<WorkerId> = trace
                .ground_truth
                .malicious_workers
                .intersection(&universe)
                .copied()
                .collect();
            let raw_acc = label_accuracy(&majority_vote(&answers), &trace.ground_truth.true_labels);
            for run in run_detectors(trace) {
                let counts = DetectionCounts::evaluate(&run.flagged, &malicious, &universe);
                // silence flagged workers, re-aggregate
                let weights: BTreeMap<WorkerId, f64> =
                    run.flagged.iter().map(|&w| (w, 0.0)).collect();
                let filtered = weighted_majority_vote(&answers, &weights);
                let filtered_acc = label_accuracy(&filtered, &trace.ground_truth.true_labels);
                rows.entry(run.name).or_default().push([
                    counts.precision(),
                    counts.recall(),
                    counts.f1(),
                    raw_acc,
                    filtered_acc,
                ]);
            }
        }
        for (name, samples) in rows {
            let avg = |k: usize| mean(samples.iter().map(|s| s[k]));
            table.row([
                format!("{:.0}%", fraction * 100.0),
                name.to_owned(),
                f3(avg(0)),
                f3(avg(1)),
                f3(avg(2)),
                f3(avg(3)),
                f3(avg(4)),
            ]);
        }
    }

    print!("{}", table.render());
    println!(
        "\nreading: detection holds up through the paper's 40% spam point \
         (filtered accuracy > raw accuracy); at 60% the majority itself is \
         compromised and agreement-based detection degrades — gold questions, \
         which do not rely on peer agreement, degrade most gracefully."
    );
}
