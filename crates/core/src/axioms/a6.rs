//! Axiom 6 — requester transparency.
//!
//! *"A requester must make available requester-dependent working
//! conditions such as hourly wage and time between submission of work and
//! payment, and task-dependent working conditions such as recruitment
//! criteria and rejection criteria."*
//!
//! Five obligations per task: hourly wage, payment delay, recruitment
//! criteria, rejection criteria, evaluation scheme. An obligation is met
//! when the task's own disclosed conditions carry it **or** the platform
//! discloses the corresponding item to workers globally (a platform-level
//! disclosure substitutes for a requester-level one — that is exactly how
//! Turkbench-style tools patch opaque requesters). The score is the mean
//! obligation coverage over tasks.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::TraceIndex;
use faircrowd_model::disclosure::{Audience, DisclosureItem};
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;
use faircrowd_model::task::Task;

/// Checker for Axiom 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct RequesterTransparency;

/// Obligation coverage of one task under a platform disclosure set: the
/// fraction met and the names still missing. Shared by this checker,
/// the naive reference and the live monitor, so the three can never
/// disagree on what a task owes (or drift on the obligation count).
pub(crate) fn obligation_coverage(
    task: &Task,
    disclosure: &faircrowd_model::disclosure::DisclosureSet,
) -> (f64, Vec<&'static str>) {
    let obligations = obligations(task);
    let total = obligations.len();
    let mut missing = Vec::new();
    let mut met = 0usize;
    for (item, task_level) in obligations {
        if task_level || disclosure.allows(item, Audience::Workers) {
            met += 1;
        } else {
            missing.push(item.name());
        }
    }
    (met as f64 / total as f64, missing)
}

/// The five obligations: item + whether the task's own conditions carry it.
pub(crate) fn obligations(task: &Task) -> [(DisclosureItem, bool); 5] {
    let c = &task.conditions;
    [
        (DisclosureItem::HourlyWage, c.stated_hourly_wage.is_some()),
        (
            DisclosureItem::PaymentDelay,
            c.stated_payment_delay.is_some(),
        ),
        (
            DisclosureItem::RecruitmentCriteria,
            c.recruitment_criteria.is_some(),
        ),
        (
            DisclosureItem::RejectionCriteria,
            c.rejection_criteria.is_some(),
        ),
        (
            DisclosureItem::EvaluationScheme,
            c.evaluation_scheme.is_some(),
        ),
    ]
}

impl Axiom for RequesterTransparency {
    fn id(&self) -> AxiomId {
        AxiomId::A6RequesterTransparency
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        _cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let trace = ix.trace();
        if trace.tasks.is_empty() {
            return AxiomReport::vacuous(self.id(), "no tasks in the trace");
        }
        let mut coverages = Vec::with_capacity(trace.tasks.len());
        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        for task in &trace.tasks {
            let (coverage, missing) = obligation_coverage(task, &trace.disclosure);
            coverages.push(coverage);
            if !missing.is_empty() {
                collector.push(
                    1.0 - coverage,
                    format!(
                        "task {} (requester {}) does not disclose: {}",
                        task.id,
                        task.requester,
                        missing.join(", ")
                    ),
                );
            }
        }
        AxiomReport {
            axiom: self.id(),
            score: stats::mean(&coverages),
            checked: trace.tasks.len(),
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![
                "an obligation is met by task-level conditions or a platform-wide grant".to_owned(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::disclosure::DisclosureSet;
    use faircrowd_model::money::Credits;
    use faircrowd_model::task::TaskConditions;
    use faircrowd_model::time::SimDuration;
    use faircrowd_model::trace::Trace;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    #[test]
    fn fully_disclosed_task_scores_one() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.tasks[0].conditions =
            TaskConditions::fully_disclosed(Credits::from_dollars(6), SimDuration::from_days(1));
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert!(r.holds());
    }

    #[test]
    fn opaque_task_scores_zero_and_lists_missing() {
        let trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.score, 0.0);
        assert_eq!(r.violation_count, 1);
        assert!(r.violations[0].description.contains("hourly_wage"));
        assert!(r.violations[0].description.contains("rejection_criteria"));
    }

    #[test]
    fn platform_grant_substitutes_for_task_conditions() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.disclosure = DisclosureSet::opaque()
            .with(DisclosureItem::HourlyWage, Audience::Workers)
            .with(DisclosureItem::PaymentDelay, Audience::Public);
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.4).abs() < 1e-12);
    }

    #[test]
    fn partial_conditions_partial_score() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.tasks[0].conditions.rejection_criteria = Some("gold failures".into());
        trace.tasks[0].conditions.evaluation_scheme = Some("majority".into());
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.4).abs() < 1e-12);
        assert!((r.violations[0].severity - 0.6).abs() < 1e-9);
    }

    #[test]
    fn mixed_tasks_average() {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10), task(1, 1, &[0, 0], 10)]);
        trace.tasks[0].conditions =
            TaskConditions::fully_disclosed(Credits::from_dollars(6), SimDuration::from_days(1));
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.5).abs() < 1e-12);
        assert_eq!(r.violation_count, 1);
    }

    #[test]
    fn empty_trace_is_vacuous() {
        let trace = Trace::default();
        let r = RequesterTransparency.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.checked, 0);
        assert_eq!(r.score, 1.0);
    }
}
