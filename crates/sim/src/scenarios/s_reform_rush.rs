//! `reform_rush`: reputation-temporal reward seeking in a two-tier
//! market.
//!
//! REFORM-style workers (PAPERS.md) treat their platform reputation as
//! an asset: as standing grows, so does the wage they demand. This
//! market posts a decently paid campaign next to a cheap one over a
//! mixed-quality crowd. At the fixed point, well-reputed diligent
//! workers have priced themselves out of the cheap campaign — which is
//! left to workers whose standing (and therefore asking wage) stayed
//! low — an emergent quality/price stratification no static
//! parameterisation authors directly.

use crate::config::CampaignSpec;
use crate::config::{ScenarioConfig, StrategyChoice, WorkerPopulation};
use faircrowd_quality::spam::WorkerArchetype;

/// The `reform_rush` preset.
pub fn config() -> ScenarioConfig {
    let mut diligent = WorkerPopulation::diligent(22);
    diligent.participation = 0.9;
    ScenarioConfig {
        seed: 42,
        rounds: 48,
        n_skills: 6,
        workers: vec![diligent, WorkerPopulation::of(WorkerArchetype::Sloppy, 10)],
        campaigns: vec![
            CampaignSpec::labeling("acme", 50, 12),
            CampaignSpec::labeling("discount_data", 45, 5),
        ],
        strategy: StrategyChoice::ReputationTemporal,
        ..Default::default()
    }
}
