//! Trace summaries.
//!
//! The §4.1 objective measures read straight off a trace: worker retention
//! (survivors / workers who ever participated), contribution quality
//! (mean objective quality of label submissions vs ground truth), plus
//! the money and frustration bookkeeping every experiment table shares.

use faircrowd_model::contribution::Contribution;
use faircrowd_model::event::{EventKind, QuitReason};
use faircrowd_model::ids::WorkerId;
use faircrowd_model::money::Credits;
use faircrowd_model::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Headline numbers for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Workers who had at least one session.
    pub active_workers: usize,
    /// Workers who quit before the horizon.
    pub quits: usize,
    /// Of those, quits attributed to frustration.
    pub frustration_quits: usize,
    /// Retention = 1 − quits / active workers (1.0 when nobody was active).
    pub retention: f64,
    /// Submissions received.
    pub submissions: usize,
    /// Mean objective quality of label submissions against ground truth.
    pub label_quality: f64,
    /// Approval rate across all judged submissions.
    pub approval_rate: f64,
    /// Total paid out (payments + bonuses).
    pub total_paid: Credits,
    /// Interrupted work items.
    pub interruptions: usize,
    /// Interrupted work items that went uncompensated.
    pub uncompensated_interruptions: usize,
}

impl TraceSummary {
    /// Summarise a trace.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut active: BTreeSet<WorkerId> = BTreeSet::new();
        let mut quits = 0usize;
        let mut frustration_quits = 0usize;
        let mut approved = 0usize;
        let mut rejected = 0usize;
        let mut total_paid = Credits::ZERO;
        let mut interruptions = 0usize;
        let mut uncompensated = 0usize;
        for e in &trace.events {
            match &e.kind {
                EventKind::SessionStarted { worker } => {
                    active.insert(*worker);
                }
                EventKind::WorkerQuit { reason, .. } => {
                    quits += 1;
                    if *reason == QuitReason::Frustration {
                        frustration_quits += 1;
                    }
                }
                EventKind::SubmissionApproved { .. } => approved += 1,
                EventKind::SubmissionRejected { .. } => rejected += 1,
                EventKind::PaymentIssued { amount, .. } | EventKind::BonusPaid { amount, .. } => {
                    total_paid += *amount;
                }
                EventKind::WorkInterrupted { compensated, .. } => {
                    interruptions += 1;
                    if !compensated {
                        uncompensated += 1;
                    }
                }
                _ => {}
            }
        }

        // Label quality vs ground truth.
        let mut quality_sum = 0.0;
        let mut quality_n = 0usize;
        for s in &trace.submissions {
            if let Contribution::Label(l) = &s.contribution {
                if let Some(truth) = trace.ground_truth.true_labels.get(&s.task) {
                    quality_sum += f64::from(l == truth);
                    quality_n += 1;
                }
            }
        }

        let judged = approved + rejected;
        TraceSummary {
            active_workers: active.len(),
            quits,
            frustration_quits,
            retention: if active.is_empty() {
                1.0
            } else {
                1.0 - quits as f64 / active.len() as f64
            },
            submissions: trace.submissions.len(),
            label_quality: if quality_n == 0 {
                0.0
            } else {
                quality_sum / quality_n as f64
            },
            approval_rate: if judged == 0 {
                1.0
            } else {
                approved as f64 / judged as f64
            },
            total_paid,
            interruptions,
            uncompensated_interruptions: uncompensated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CampaignSpec, ScenarioConfig, WorkerPopulation};
    use crate::Simulation;

    fn trace() -> Trace {
        Simulation::new(ScenarioConfig {
            seed: 11,
            rounds: 24,
            workers: vec![WorkerPopulation::diligent(10)],
            campaigns: vec![CampaignSpec::labeling("acme", 15, 10)],
            ..Default::default()
        })
        .run()
    }

    #[test]
    fn summary_of_healthy_run() {
        let s = TraceSummary::of(&trace());
        assert!(s.active_workers > 0);
        assert!(s.submissions > 0);
        assert!(s.retention > 0.5, "healthy market keeps workers");
        assert!(
            s.label_quality > 0.8,
            "diligent-only crowd labels well: {}",
            s.label_quality
        );
        assert!(s.approval_rate > 0.7);
        assert!(s.total_paid.is_positive());
        assert_eq!(s.interruptions, 0);
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = TraceSummary::of(&Trace::default());
        assert_eq!(s.active_workers, 0);
        assert_eq!(s.retention, 1.0);
        assert_eq!(s.label_quality, 0.0);
        assert_eq!(s.approval_rate, 1.0);
        assert_eq!(s.total_paid, Credits::ZERO);
    }
}
