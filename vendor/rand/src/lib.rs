//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds hermetically, so this shim re-implements exactly
//! the surface the crates use: [`RngCore`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, high-quality, and stable across platforms,
//! which is all the simulator's reproducibility story requires. Stream
//! values differ from upstream `rand`'s `StdRng` (ChaCha12); nothing in
//! the workspace depends on upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output blocks.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// A `u64` mapped to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a value can be uniformly drawn from.
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range, mirroring `rand`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Rounding (f64 unit → f32, or the multiply itself) can
                // land exactly on `end`; resample to keep the half-open
                // contract (probability ~2^-25 per draw for f32).
                loop {
                    let v = self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        rng.fill_bytes(&mut [0u8; 13]); // exercise fill_bytes remainder path
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0..10u32);
        assert!(x < 10);
        let _ = dyn_rng.gen_bool(0.5);
    }
}
