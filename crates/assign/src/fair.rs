//! Fairness-enforcement wrappers.
//!
//! §3.3.1: the axioms are not only a checking framework but "guidelines
//! for designing fair crowdsourcing processes from scratch". These
//! wrappers take *any* base policy and repair its exposure so Axiom 1
//! holds, demonstrating fairness **by design**:
//!
//! * [`ExposureParity`] — workers in the same similarity class are shown
//!   the union of what any of them was shown (restricted to tasks they
//!   qualify for). Under equality-similarity this drives the Axiom-1
//!   violation rate to zero while leaving assignments untouched.
//! * [`ExposureFloor`] — every worker is shown at least `min_exposure`
//!   qualified tasks, eliminating total-exclusion discrimination.

use crate::policy::{AssignInput, AssignmentOutcome, AssignmentPolicy, WorkerView};
use rand::RngCore;

/// Group workers into similarity classes: same-skill (by kernel score ≥
/// threshold) and close quality. Greedy clustering against each class's
/// first member keeps the result deterministic.
pub fn similarity_classes(
    workers: &[WorkerView],
    skill_threshold: f64,
    quality_tolerance: f64,
) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (wi, w) in workers.iter().enumerate() {
        let mut placed = false;
        for class in classes.iter_mut() {
            let rep = &workers[class[0]];
            let skill_sim = rep.skills.cosine(&w.skills);
            if skill_sim >= skill_threshold && (rep.quality - w.quality).abs() <= quality_tolerance
            {
                class.push(wi);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![wi]);
        }
    }
    classes
}

/// Equalise exposure within worker similarity classes.
#[derive(Debug, Clone)]
pub struct ExposureParity<P> {
    /// The wrapped base policy.
    pub base: P,
    /// Skill-cosine threshold for class membership.
    pub skill_threshold: f64,
    /// Maximum quality difference for class membership.
    pub quality_tolerance: f64,
}

impl<P> ExposureParity<P> {
    /// Wrap a base policy with the default similarity regime (cosine ≥
    /// 0.9, quality within 0.1 — matching `SimilarityConfig::default`).
    pub fn new(base: P) -> Self {
        ExposureParity {
            base,
            skill_threshold: 0.9,
            quality_tolerance: 0.1,
        }
    }
}

impl<P: AssignmentPolicy> AssignmentPolicy for ExposureParity<P> {
    fn name(&self) -> &'static str {
        "exposure-parity"
    }

    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = self.base.assign(input, rng);
        let classes =
            similarity_classes(&input.workers, self.skill_threshold, self.quality_tolerance);
        for class in classes {
            // union of everything anyone in the class was shown
            let mut union = std::collections::BTreeSet::new();
            for &wi in &class {
                if let Some(vis) = outcome.visibility.get(&input.workers[wi].id) {
                    union.extend(vis.iter().copied());
                }
            }
            // grant the union to every member, restricted to qualification
            for &wi in &class {
                let w = &input.workers[wi];
                for &tid in &union {
                    let qualified = input
                        .tasks
                        .iter()
                        .find(|t| t.id == tid)
                        .map(|t| w.qualifies(t))
                        .unwrap_or(false);
                    if qualified {
                        outcome.show(w.id, tid);
                    }
                }
            }
        }
        outcome
    }
}

/// Guarantee a minimum number of visible qualified tasks per worker.
#[derive(Debug, Clone)]
pub struct ExposureFloor<P> {
    /// The wrapped base policy.
    pub base: P,
    /// Minimum tasks each worker must be shown (capped by how many she
    /// qualifies for).
    pub min_exposure: usize,
}

impl<P: AssignmentPolicy> AssignmentPolicy for ExposureFloor<P> {
    fn name(&self) -> &'static str {
        "exposure-floor"
    }

    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = self.base.assign(input, rng);
        for w in &input.workers {
            let have = outcome.visibility.get(&w.id).map_or(0, |v| v.len());
            if have >= self.min_exposure {
                continue;
            }
            let mut need = self.min_exposure - have;
            for t in &input.tasks {
                if need == 0 {
                    break;
                }
                let already = outcome
                    .visibility
                    .get(&w.id)
                    .map(|v| v.contains(&t.id))
                    .unwrap_or(false);
                if !already && w.qualifies(t) {
                    outcome.show(w.id, t.id);
                    need -= 1;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use crate::policy::{TaskView, WorkerView};
    use crate::RequesterCentric;
    use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
    use faircrowd_model::money::Credits;
    use faircrowd_model::skills::SkillVector;
    use faircrowd_model::time::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Market with two identical workers (a "similar pair") and one star
    /// worker the requester-centric policy will favour.
    fn twin_market() -> AssignInput {
        let skills = SkillVector::from_bools([true]);
        AssignInput {
            tasks: (0..4)
                .map(|i| TaskView {
                    id: TaskId::new(i),
                    requester: RequesterId::new(0),
                    skills: skills.clone(),
                    reward: Credits::from_cents(10 + i as i64),
                    slots: 1,
                    est_duration: SimDuration::from_mins(5),
                })
                .collect(),
            workers: vec![
                WorkerView {
                    id: WorkerId::new(0),
                    skills: skills.clone(),
                    quality: 0.95,
                    capacity: 4,
                    group: None,
                },
                WorkerView {
                    id: WorkerId::new(1),
                    skills: skills.clone(),
                    quality: 0.6,
                    capacity: 4,
                    group: None,
                },
                WorkerView {
                    id: WorkerId::new(2),
                    skills,
                    quality: 0.6,
                    capacity: 4,
                    group: None,
                },
            ],
        }
    }

    #[test]
    fn similarity_classes_group_twins() {
        let m = twin_market();
        let classes = similarity_classes(&m.workers, 0.9, 0.1);
        // w1 and w2 are identical; w0 differs in quality
        assert_eq!(classes.len(), 2);
        let twin_class = classes.iter().find(|c| c.len() == 2).expect("twins");
        assert_eq!(twin_class, &vec![1, 2]);
    }

    #[test]
    fn parity_unions_visibility_within_class() {
        let m = twin_market();
        // Base: requester-centric gives everything to w0; twins see
        // nothing or asymmetric scraps.
        let base = RequesterCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        let v1 = base
            .visibility
            .get(&WorkerId::new(1))
            .cloned()
            .unwrap_or_default();
        let v2 = base
            .visibility
            .get(&WorkerId::new(2))
            .cloned()
            .unwrap_or_default();
        // (sanity: the base policy concentrates exposure on w0)
        assert!(v1.len() + v2.len() < 8);

        let mut wrapped = ExposureParity::new(RequesterCentric);
        let o = wrapped.assign(&m, &mut StdRng::seed_from_u64(0));
        let w1 = o
            .visibility
            .get(&WorkerId::new(1))
            .cloned()
            .unwrap_or_default();
        let w2 = o
            .visibility
            .get(&WorkerId::new(2))
            .cloned()
            .unwrap_or_default();
        assert_eq!(w1, w2, "similar workers must see the same tasks");
        assert!(o.check_feasible(&m).is_empty());
        // assignments unchanged from base
        assert_eq!(o.assignments, base.assignments);
    }

    #[test]
    fn parity_respects_qualification() {
        let mut m = twin_market();
        // make w2 unqualified for task 3
        m.tasks[3].skills = SkillVector::from_bools([true, true]);
        m.workers[1].skills = SkillVector::from_bools([true, true]);
        // now w1 and w2 differ in skills -> may not even be a class; use
        // a generous threshold to force them together
        let mut wrapped = ExposureParity {
            base: RequesterCentric,
            skill_threshold: 0.5,
            quality_tolerance: 0.2,
        };
        let o = wrapped.assign(&m, &mut StdRng::seed_from_u64(0));
        if let Some(v2) = o.visibility.get(&WorkerId::new(2)) {
            assert!(
                !v2.contains(&TaskId::new(3)),
                "unqualified task granted through parity"
            );
        }
    }

    #[test]
    fn floor_guarantees_minimum_exposure() {
        let m = twin_market();
        let mut wrapped = ExposureFloor {
            base: RequesterCentric,
            min_exposure: 2,
        };
        let o = wrapped.assign(&m, &mut StdRng::seed_from_u64(0));
        for w in &m.workers {
            let seen = o.visibility.get(&w.id).map_or(0, |v| v.len());
            assert!(seen >= 2, "{} sees only {seen}", w.id);
        }
        assert!(o.check_feasible(&m).is_empty());
    }

    #[test]
    fn floor_caps_at_qualified_tasks() {
        let m = small_market();
        // w3 qualifies only for t0; a floor of 3 cannot exceed 1
        let mut wrapped = ExposureFloor {
            base: RequesterCentric,
            min_exposure: 3,
        };
        let o = wrapped.assign(&m, &mut StdRng::seed_from_u64(0));
        let w3 = o
            .visibility
            .get(&WorkerId::new(3))
            .cloned()
            .unwrap_or_default();
        assert_eq!(w3.len(), 1);
    }

    #[test]
    fn wrappers_report_their_names() {
        assert_eq!(
            ExposureParity::new(RequesterCentric).name(),
            "exposure-parity"
        );
        assert_eq!(
            ExposureFloor {
                base: RequesterCentric,
                min_exposure: 1
            }
            .name(),
            "exposure-floor"
        );
    }
}
