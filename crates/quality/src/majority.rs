//! Majority-vote aggregation.
//!
//! The baseline truth-inference scheme: each task's answer is the label
//! most workers gave. The weighted variant scales each worker's vote by a
//! reliability weight (e.g. a gold-question accuracy or a Dawid–Skene
//! estimate), which is how detection feeds back into aggregation in E3.

use crate::answers::AnswerSet;
use faircrowd_model::ids::{TaskId, WorkerId};
use std::collections::BTreeMap;

/// Plain majority vote. **Tie rule:** a task whose top tally is shared
/// by two or more labels has *no consensus* and is absent from the
/// result — the same as a task with no answers. The previous behaviour
/// silently resolved ties toward the lowest label index, biasing
/// consensus toward label 0 on every evenly-split task; downstream
/// consumers (agreement rates, Dawid–Skene initialisation, detection
/// accuracy) inherited that bias as if it were evidence.
pub fn majority_vote(answers: &AnswerSet) -> BTreeMap<TaskId, u8> {
    weighted_majority_vote(answers, &BTreeMap::new())
}

/// Majority vote with per-worker weights; missing workers weigh 1.0.
/// Non-positive weights silence a worker entirely. The tie rule of
/// [`majority_vote`] applies: a tied top tally means no consensus, so
/// the task is absent from the result.
pub fn weighted_majority_vote(
    answers: &AnswerSet,
    weights: &BTreeMap<WorkerId, f64>,
) -> BTreeMap<TaskId, u8> {
    let classes = answers.classes() as usize;
    let mut tallies: BTreeMap<TaskId, Vec<f64>> = BTreeMap::new();
    for a in answers.answers() {
        let weight = weights.get(&a.worker).copied().unwrap_or(1.0);
        if weight <= 0.0 {
            continue;
        }
        let tally = tallies.entry(a.task).or_insert_with(|| vec![0.0; classes]);
        tally[a.label as usize] += weight;
    }
    tallies
        .into_iter()
        .filter_map(|(task, tally)| {
            let best = unique_argmax(&tally)?;
            // A task whose every answer was silenced has an all-zero tally
            // and carries no information.
            if tally[best] <= 0.0 {
                return None;
            }
            Some((task, best as u8))
        })
        .collect()
}

/// Index of the **strict** maximum; `None` on empty input or when the
/// maximum is attained by more than one element (a tie carries no
/// consensus, and deciding it would need a rule the voters never
/// agreed to).
fn unique_argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    let mut tied = false;
    for (i, &x) in xs.iter().enumerate() {
        match best {
            Some((_, bx)) if x == bx => tied = true,
            Some((_, bx)) if x < bx => {}
            _ => {
                best = Some((i, x));
                tied = false;
            }
        }
    }
    match best {
        Some((i, _)) if !tied => Some(i),
        _ => None,
    }
}

/// Per-task agreement rate: the fraction of answers matching the majority
/// label. High mean agreement indicates an easy/clean task set; per-worker
/// *dis*agreement is the core spam signal (see [`crate::spam`]). Tasks
/// without a consensus — no answers, or a tied vote — have no agreement
/// rate and are absent from the result.
pub fn agreement_rates(answers: &AnswerSet) -> BTreeMap<TaskId, f64> {
    let consensus = majority_vote(answers);
    let mut rates = BTreeMap::new();
    for (task, group) in answers.by_task() {
        if let Some(&label) = consensus.get(&task) {
            let agree = group.iter().filter(|a| a.label == label).count();
            rates.insert(task, agree as f64 / group.len() as f64);
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    fn set(rows: &[(u32, u32, u8)], classes: u8) -> AnswerSet {
        let mut s = AnswerSet::new(classes);
        for &(wi, ti, l) in rows {
            s.record(w(wi), t(ti), l);
        }
        s
    }

    #[test]
    fn simple_majority() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (2, 0, 0)], 2);
        let mv = majority_vote(&s);
        assert_eq!(mv[&t(0)], 1);
    }

    #[test]
    fn tie_yields_no_consensus() {
        // One vote each way: the old rule silently declared label 0 the
        // winner; the documented rule is "tie ⇒ no consensus".
        let s = set(&[(0, 0, 1), (1, 0, 0)], 2);
        assert!(!majority_vote(&s).contains_key(&t(0)));
        // Three-way tie across three classes behaves the same.
        let s3 = set(&[(0, 0, 0), (1, 0, 1), (2, 0, 2)], 3);
        assert!(majority_vote(&s3).is_empty());
        // A tie among *leaders* is still a tie even with a trailing label.
        let partial = set(&[(0, 0, 1), (1, 0, 1), (2, 0, 2), (3, 0, 2), (4, 0, 0)], 3);
        assert!(!majority_vote(&partial).contains_key(&t(0)));
        // An extra vote breaks the tie and restores consensus.
        let s = set(&[(0, 0, 1), (1, 0, 0), (2, 0, 1)], 2);
        assert_eq!(majority_vote(&s)[&t(0)], 1);
    }

    #[test]
    fn weighted_tie_yields_no_consensus_and_weights_break_it() {
        let s = set(&[(0, 0, 1), (1, 0, 0)], 2);
        // Equal weights: still tied, still no consensus.
        let mut weights = BTreeMap::new();
        weights.insert(w(0), 2.0);
        weights.insert(w(1), 2.0);
        assert!(weighted_majority_vote(&s, &weights).is_empty());
        // Unequal weights resolve it — in either direction.
        weights.insert(w(1), 3.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 0);
        weights.insert(w(0), 5.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 1);
    }

    #[test]
    fn weights_can_flip_the_outcome() {
        let s = set(&[(0, 0, 1), (1, 0, 0), (2, 0, 0)], 2);
        assert_eq!(majority_vote(&s)[&t(0)], 0);
        let mut weights = BTreeMap::new();
        weights.insert(w(0), 5.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 1);
    }

    #[test]
    fn zero_weight_silences_worker() {
        let s = set(&[(0, 0, 1), (1, 0, 0)], 2);
        let mut weights = BTreeMap::new();
        weights.insert(w(0), 0.0);
        assert_eq!(weighted_majority_vote(&s, &weights)[&t(0)], 0);
        // silencing everyone drops the task
        weights.insert(w(1), 0.0);
        assert!(weighted_majority_vote(&s, &weights).is_empty());
    }

    #[test]
    fn empty_answerset_yields_empty_result() {
        let s = AnswerSet::new(2);
        assert!(majority_vote(&s).is_empty());
    }

    #[test]
    fn agreement_rates_computed() {
        let s = set(&[(0, 0, 1), (1, 0, 1), (2, 0, 0), (0, 1, 0)], 2);
        let rates = agreement_rates(&s);
        assert!((rates[&t(0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[&t(1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_rates_skip_tied_tasks() {
        // t0 is tied (no consensus, so no agreement rate — under the old
        // rule it reported 0.5 agreement "with" an arbitrary label 0);
        // t1 has a real consensus and keeps its rate.
        let s = set(&[(0, 0, 1), (1, 0, 0), (0, 1, 1), (1, 1, 1), (2, 1, 0)], 2);
        let rates = agreement_rates(&s);
        assert!(
            !rates.contains_key(&t(0)),
            "tied task has no agreement rate"
        );
        assert!((rates[&t(1)] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unique_argmax_edge_cases() {
        assert_eq!(unique_argmax(&[]), None);
        assert_eq!(unique_argmax(&[1.0]), Some(0));
        assert_eq!(unique_argmax(&[1.0, 3.0, 2.0]), Some(1));
        // Tied maxima — anywhere in the slice — yield no winner.
        assert_eq!(unique_argmax(&[1.0, 3.0, 3.0]), None);
        assert_eq!(unique_argmax(&[3.0, 1.0, 3.0]), None);
        // A tie among non-leaders is not a tie.
        assert_eq!(unique_argmax(&[2.0, 2.0, 3.0]), Some(2));
    }
}
