//! Trace summaries.
//!
//! The §4.1 objective measures read straight off a trace: worker retention
//! (survivors / workers who ever participated), contribution quality
//! (mean objective quality of label submissions vs ground truth), plus
//! the money and frustration bookkeeping every experiment table shares.

use faircrowd_model::contribution::Contribution;
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::event::{EventKind, QuitReason};
use faircrowd_model::ids::WorkerId;
use faircrowd_model::json::Json;
use faircrowd_model::money::Credits;
use faircrowd_model::trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Headline numbers for one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Workers who had at least one session.
    pub active_workers: usize,
    /// Workers who quit before the horizon.
    pub quits: usize,
    /// Of those, quits attributed to frustration.
    pub frustration_quits: usize,
    /// Retention = 1 − quits / active workers (1.0 when nobody was active).
    pub retention: f64,
    /// Submissions received.
    pub submissions: usize,
    /// Mean objective quality of label submissions against ground truth.
    pub label_quality: f64,
    /// Approval rate across all judged submissions.
    pub approval_rate: f64,
    /// Total paid out (payments + bonuses).
    pub total_paid: Credits,
    /// Interrupted work items.
    pub interruptions: usize,
    /// Interrupted work items that went uncompensated.
    pub uncompensated_interruptions: usize,
}

impl TraceSummary {
    /// Summarise a trace.
    pub fn of(trace: &Trace) -> TraceSummary {
        let mut active: BTreeSet<WorkerId> = BTreeSet::new();
        let mut quits = 0usize;
        let mut frustration_quits = 0usize;
        let mut approved = 0usize;
        let mut rejected = 0usize;
        let mut total_paid = Credits::ZERO;
        let mut interruptions = 0usize;
        let mut uncompensated = 0usize;
        for e in &trace.events {
            match &e.kind {
                EventKind::SessionStarted { worker } => {
                    active.insert(*worker);
                }
                EventKind::WorkerQuit { reason, .. } => {
                    quits += 1;
                    if *reason == QuitReason::Frustration {
                        frustration_quits += 1;
                    }
                }
                EventKind::SubmissionApproved { .. } => approved += 1,
                EventKind::SubmissionRejected { .. } => rejected += 1,
                EventKind::PaymentIssued { amount, .. } | EventKind::BonusPaid { amount, .. } => {
                    total_paid += *amount;
                }
                EventKind::WorkInterrupted { compensated, .. } => {
                    interruptions += 1;
                    if !compensated {
                        uncompensated += 1;
                    }
                }
                _ => {}
            }
        }

        // Label quality vs ground truth.
        let mut quality_sum = 0.0;
        let mut quality_n = 0usize;
        for s in &trace.submissions {
            if let Contribution::Label(l) = &s.contribution {
                if let Some(truth) = trace.ground_truth.true_labels.get(&s.task) {
                    quality_sum += f64::from(l == truth);
                    quality_n += 1;
                }
            }
        }

        let judged = approved + rejected;
        TraceSummary {
            active_workers: active.len(),
            quits,
            frustration_quits,
            retention: if active.is_empty() {
                1.0
            } else {
                1.0 - quits as f64 / active.len() as f64
            },
            submissions: trace.submissions.len(),
            label_quality: if quality_n == 0 {
                0.0
            } else {
                quality_sum / quality_n as f64
            },
            approval_rate: if judged == 0 {
                1.0
            } else {
                approved as f64 / judged as f64
            },
            total_paid,
            interruptions,
            uncompensated_interruptions: uncompensated,
        }
    }

    /// Encode as a JSON object, losslessly: counts as integer tokens,
    /// ratios in shortest round-trip float form, money as millicents.
    /// Sweep part files persist per-cell summaries through this.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "active_workers".to_owned(),
                Json::uint(self.active_workers as u64),
            ),
            ("quits".to_owned(), Json::uint(self.quits as u64)),
            (
                "frustration_quits".to_owned(),
                Json::uint(self.frustration_quits as u64),
            ),
            ("retention".to_owned(), Json::float(self.retention)),
            (
                "submissions".to_owned(),
                Json::uint(self.submissions as u64),
            ),
            ("label_quality".to_owned(), Json::float(self.label_quality)),
            ("approval_rate".to_owned(), Json::float(self.approval_rate)),
            (
                "total_paid_millicents".to_owned(),
                Json::int(self.total_paid.millicents()),
            ),
            (
                "interruptions".to_owned(),
                Json::uint(self.interruptions as u64),
            ),
            (
                "uncompensated_interruptions".to_owned(),
                Json::uint(self.uncompensated_interruptions as u64),
            ),
        ])
    }

    /// Decode a summary written by [`TraceSummary::to_json`]. Missing or
    /// mistyped fields are a [`FaircrowdError::Persist`] naming the
    /// field and `ctx`, never a panic.
    pub fn from_json(
        json: &Json,
        ctx: impl std::fmt::Display,
    ) -> Result<TraceSummary, FaircrowdError> {
        let count = |key: &str| -> Result<usize, FaircrowdError> {
            let v = json
                .get(key)
                .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing field `{key}`")))?;
            v.as_u64()
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| {
                    FaircrowdError::persist(format!(
                        "{ctx}: field `{key}` should be a count, got {}",
                        v.kind()
                    ))
                })
        };
        let ratio = |key: &str| -> Result<f64, FaircrowdError> {
            let v = json
                .get(key)
                .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing field `{key}`")))?;
            v.as_f64().ok_or_else(|| {
                FaircrowdError::persist(format!(
                    "{ctx}: field `{key}` should be a number, got {}",
                    v.kind()
                ))
            })
        };
        Ok(TraceSummary {
            active_workers: count("active_workers")?,
            quits: count("quits")?,
            frustration_quits: count("frustration_quits")?,
            retention: ratio("retention")?,
            submissions: count("submissions")?,
            label_quality: ratio("label_quality")?,
            approval_rate: ratio("approval_rate")?,
            total_paid: Credits::from_millicents(
                json.get("total_paid_millicents")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| {
                        FaircrowdError::persist(format!(
                            "{ctx}: field `total_paid_millicents` should be an integer"
                        ))
                    })?,
            ),
            interruptions: count("interruptions")?,
            uncompensated_interruptions: count("uncompensated_interruptions")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CampaignSpec, ScenarioConfig, WorkerPopulation};
    use crate::Simulation;

    fn trace() -> Trace {
        Simulation::new(ScenarioConfig {
            seed: 11,
            rounds: 24,
            workers: vec![WorkerPopulation::diligent(10)],
            campaigns: vec![CampaignSpec::labeling("acme", 15, 10)],
            ..Default::default()
        })
        .run()
    }

    #[test]
    fn summary_of_healthy_run() {
        let s = TraceSummary::of(&trace());
        assert!(s.active_workers > 0);
        assert!(s.submissions > 0);
        assert!(s.retention > 0.5, "healthy market keeps workers");
        assert!(
            s.label_quality > 0.8,
            "diligent-only crowd labels well: {}",
            s.label_quality
        );
        assert!(s.approval_rate > 0.7);
        assert!(s.total_paid.is_positive());
        assert_eq!(s.interruptions, 0);
    }

    #[test]
    fn summary_json_roundtrips_bit_exact() {
        let s = TraceSummary::of(&trace());
        let json = Json::parse(&s.to_json().to_compact()).unwrap();
        let back = TraceSummary::from_json(&json, "test").unwrap();
        assert_eq!(back, s);
        assert_eq!(back.retention.to_bits(), s.retention.to_bits());
        let err = TraceSummary::from_json(&Json::Obj(vec![]), "cell 3 summary").unwrap_err();
        assert!(err.to_string().contains("cell 3 summary"), "{err}");
        assert!(err.to_string().contains("`active_workers`"), "{err}");
    }

    #[test]
    fn summary_of_empty_trace() {
        let s = TraceSummary::of(&Trace::default());
        assert_eq!(s.active_workers, 0);
        assert_eq!(s.retention, 1.0);
        assert_eq!(s.label_quality, 0.0);
        assert_eq!(s.approval_rate, 1.0);
        assert_eq!(s.total_paid, Credits::ZERO);
    }
}
