//! Convergence-engine integration suite: the fixed-point loop is
//! deterministic, the `static` strategy is the exact pre-refactor
//! simulator (pinned bit-identical for every legacy scenario), and a
//! converged trace survives the export → replay round trip with an
//! identical audit — the properties the CI converge smoke re-checks
//! from the shell.

use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::model::FaircrowdError;
use faircrowd::prelude::*;
use faircrowd::sim::{catalog, ConvergeOptions};

/// FNV-1a 64 — the same tiny content hash the sweep shard files use
/// for grid identity, applied here to encoded traces.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn jsonl(trace: &Trace) -> String {
    persist::encode(trace, TraceFormat::Jsonl)
}

/// The no-regression oracle: FNV-1a 64 over the JSONL encoding of each
/// legacy scenario's trace, recorded when the strategy layer landed.
/// The `static` strategy must keep reproducing these bytes forever —
/// a changed pin means the refactor broke bit-identity.
const LEGACY_TRACE_FNV: [(&str, u64); 8] = [
    ("baseline", 0x79ab_4b78_03d4_18ca),
    ("spam_campaign", 0xff75_94e4_fb6e_5304),
    ("worker_churn", 0xc20e_fb12_65b5_5fb3),
    ("skill_skew", 0xcd33_57d1_c0f3_86b0),
    ("requester_monopoly", 0xb962_b2cd_dd10_cbdc),
    ("flash_crowd", 0x8028_dd25_9241_af31),
    ("budget_starved", 0x0cc7_d36d_f77c_499e),
    ("transparent_utopia", 0x447b_e315_4c56_c1d3),
];

#[test]
fn static_family_converges_in_one_iteration_to_the_pinned_traces() {
    for (name, pinned) in LEGACY_TRACE_FNV {
        let cfg = catalog::get(name).unwrap();
        let converged = Pipeline::new()
            .scenario(cfg.clone())
            .run_converged()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            converged.iterations, 1,
            "{name}: static scenarios fix in one iteration"
        );
        let plain = faircrowd::sim::run(cfg);
        let encoded = jsonl(&converged.artifacts.trace);
        assert_eq!(
            encoded,
            jsonl(&plain),
            "{name}: converged static trace must BE the plain run"
        );
        assert_eq!(
            fnv64(encoded.as_bytes()),
            pinned,
            "{name}: trace drifted from the pre-refactor pin \
             (computed {:#018x})",
            fnv64(encoded.as_bytes())
        );
    }
}

#[test]
fn strategic_fixed_points_are_deterministic_per_seed() {
    for name in catalog::STRATEGIC_NAMES {
        let mut cfg = catalog::get(name).unwrap();
        cfg.rounds = cfg.rounds.min(12);
        let run = || {
            Pipeline::new()
                .scenario(cfg.clone())
                .run_converged()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        let (a, b) = (run(), run());
        assert!(a.iterations >= 2, "{name}: strategic market must adapt");
        assert_eq!(a.iterations, b.iterations, "{name}: iteration count");
        assert_eq!(
            jsonl(&a.artifacts.trace),
            jsonl(&b.artifacts.trace),
            "{name}: same seed must give a bit-identical fixed point"
        );
        assert_eq!(a.state, b.state, "{name}: converged strategy state");
    }
}

#[test]
fn converged_trace_replays_to_an_identical_audit() {
    // Export the fixed point in the binary (.fcb) form, decode it back,
    // and replay it with no simulator in the loop: the audit report
    // must not move by a byte — the CI smoke's in-process twin.
    let mut cfg = catalog::get("super_turkers").unwrap();
    cfg.rounds = 10;
    let converged = Pipeline::new().scenario(cfg).run_converged().unwrap();
    let bytes = persist::encode_bytes(&converged.artifacts.trace, TraceFormat::Binary);
    let decoded = persist::decode_bytes(&bytes).unwrap();
    let replayed = Pipeline::new().replay_owned(decoded).unwrap();
    assert_eq!(
        render_report(&replayed.report),
        render_report(&converged.artifacts.report),
        "replayed audit of the converged trace must be bit-identical"
    );
    assert_eq!(replayed.summary, converged.artifacts.summary);
}

#[test]
fn strategy_override_matches_the_strategic_run_everywhere() {
    // `--strategy` on a static base and a strategic catalog entry are
    // the same machinery: run(), simulate() and run_converged() all
    // route through the converge loop and agree on the trace.
    let mut cfg = catalog::get("baseline").unwrap();
    cfg.rounds = 8;
    let pipeline = || {
        Pipeline::new()
            .scenario(cfg.clone())
            .strategy_name("price_undercut")
            .unwrap()
    };
    let converged = pipeline().run_converged().unwrap();
    let ran = pipeline().run().unwrap();
    let simulated = pipeline().simulate().unwrap();
    assert_eq!(
        jsonl(&converged.artifacts.trace),
        jsonl(&ran.baseline.trace)
    );
    assert_eq!(jsonl(&converged.artifacts.trace), jsonl(&simulated));
}

#[test]
fn divergence_and_unknown_strategies_are_named_errors() {
    let mut cfg = catalog::get("reform_rush").unwrap();
    cfg.rounds = 8;
    let err = Pipeline::new()
        .scenario(cfg)
        .converge_options(ConvergeOptions {
            tolerance: 1e-12,
            max_iterations: 2,
            gain: 0.5,
        })
        .run_converged()
        .unwrap_err();
    match &err {
        FaircrowdError::Diverged { message } => {
            assert!(message.contains("2 iteration"), "{message}");
            assert!(message.contains("reputation_temporal"), "{message}");
        }
        other => panic!("expected Diverged, got {other:?}"),
    }
    let err = Pipeline::new().strategy_name("galaxy_brain").unwrap_err();
    match err {
        FaircrowdError::UnknownStrategy { name, available } => {
            assert_eq!(name, "galaxy_brain");
            assert!(available.contains(&"super_turker".to_owned()));
        }
        other => panic!("expected UnknownStrategy, got {other:?}"),
    }
}
