//! Shared JSON field accessors for the versioned on-disk schemas.
//!
//! Every persisted schema in this crate — checkpoints
//! ([`crate::checkpoint`]), per-cell sweep results ([`crate::results`])
//! — decodes through the same discipline: a missing or mistyped field
//! is a [`FaircrowdError::Persist`] naming the field, its expected
//! shape, and the context it sat in, never a panic. These helpers are
//! that discipline in one place, so the schemas cannot drift apart in
//! how they report corruption.

use faircrowd_model::error::FaircrowdError;
use faircrowd_model::json::Json;

pub(crate) fn require<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a Json, FaircrowdError> {
    json.get(key)
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: missing field `{key}`")))
}

pub(crate) fn u64_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<u64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_u64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an unsigned integer, got {}",
            v.kind()
        ))
    })
}

pub(crate) fn i64_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<i64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_i64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an integer, got {}",
            v.kind()
        ))
    })
}

pub(crate) fn u32_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<u32, FaircrowdError> {
    let v = u64_field(json, key, &ctx)?;
    u32::try_from(v)
        .map_err(|_| FaircrowdError::persist(format!("{ctx}: field `{key}` overflows an id")))
}

pub(crate) fn u32_value(json: &Json, ctx: impl std::fmt::Display) -> Result<u32, FaircrowdError> {
    json.as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: value should be a 32-bit id")))
}

pub(crate) fn u64_pair(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<(u64, u64), FaircrowdError> {
    let arr = json
        .as_arr()
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: pair is not an array")))?;
    match arr {
        [a, b] => Ok((
            a.as_u64().ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: pair holds a non-integer"))
            })?,
            b.as_u64().ok_or_else(|| {
                FaircrowdError::persist(format!("{ctx}: pair holds a non-integer"))
            })?,
        )),
        _ => Err(FaircrowdError::persist(format!(
            "{ctx}: pair has {} element(s), expected 2",
            arr.len()
        ))),
    }
}

pub(crate) fn u32_pair(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<(u32, u32), FaircrowdError> {
    let (a, b) = u64_pair(json, &ctx)?;
    match (u32::try_from(a), u32::try_from(b)) {
        (Ok(a), Ok(b)) => Ok((a, b)),
        _ => Err(FaircrowdError::persist(format!(
            "{ctx}: pair member overflows an id"
        ))),
    }
}

pub(crate) fn f64_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<f64, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_f64().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a number, got {}",
            v.kind()
        ))
    })
}

pub(crate) fn bool_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<bool, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_bool().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a boolean, got {}",
            v.kind()
        ))
    })
}

pub(crate) fn str_field<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a str, FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_str().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be a string, got {}",
            v.kind()
        ))
    })
}

pub(crate) fn arr_field<'a>(
    json: &'a Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<&'a [Json], FaircrowdError> {
    let v = require(json, key, &ctx)?;
    v.as_arr().ok_or_else(|| {
        FaircrowdError::persist(format!(
            "{ctx}: field `{key}` should be an array, got {}",
            v.kind()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_name_field_context_and_kind() {
        let json = Json::parse(r#"{"a": 1, "b": "x", "c": [1, 2], "d": true, "e": 1.5}"#).unwrap();
        assert_eq!(u64_field(&json, "a", "ctx").unwrap(), 1);
        assert_eq!(i64_field(&json, "a", "ctx").unwrap(), 1);
        assert_eq!(u32_field(&json, "a", "ctx").unwrap(), 1);
        assert_eq!(str_field(&json, "b", "ctx").unwrap(), "x");
        assert_eq!(arr_field(&json, "c", "ctx").unwrap().len(), 2);
        assert!(bool_field(&json, "d", "ctx").unwrap());
        assert_eq!(f64_field(&json, "e", "ctx").unwrap(), 1.5);
        let err = u64_field(&json, "missing", "my context").unwrap_err();
        assert!(err.to_string().contains("my context"), "{err}");
        assert!(err.to_string().contains("`missing`"), "{err}");
        let err = u64_field(&json, "b", "ctx").unwrap_err();
        assert!(err.to_string().contains("unsigned integer"), "{err}");
        assert!(err.to_string().contains("string"), "{err}");
        let err = u64_pair(json.get("b").unwrap(), "ctx").unwrap_err();
        assert!(err.to_string().contains("not an array"), "{err}");
        assert_eq!(u64_pair(json.get("c").unwrap(), "ctx").unwrap(), (1, 2));
        assert_eq!(u32_pair(json.get("c").unwrap(), "ctx").unwrap(), (1, 2));
        assert_eq!(u32_value(json.get("a").unwrap(), "ctx").unwrap(), 1);
    }
}
