//! Effective wages and wage-inequality statistics.
//!
//! The transparency tools the paper surveys (Crowd-Workers \[3\], Turkbench
//! \[6\]) exist to disclose **expected hourly wages**; the fairness
//! literature it cites (\[2\], \[17\]) frames wage discrimination as the core
//! harm. This module computes effective hourly wages from payments and
//! invested time, and inequality indices over the resulting distribution.

use faircrowd_model::money::Credits;
use faircrowd_model::stats;
use faircrowd_model::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Effective hourly wage: earnings divided by invested time. `None` when
/// no time was invested (a wage is meaningless without work).
///
/// The division is **exact integer arithmetic**: `earned × 3600 / secs`
/// in millicents, widened through `i128` and rounded half away from
/// zero. The earlier implementation multiplied by an `f64` reciprocal
/// (`earned · (1/hours)`), which rounds twice — once forming the
/// reciprocal, once converting back — and misstates wages by a
/// millicent on amounts the disclosure tools then report as fact.
pub fn hourly_wage(earned: Credits, worked: SimDuration) -> Option<Credits> {
    let secs = worked.as_secs();
    if secs == 0 {
        return None;
    }
    let num = i128::from(earned.millicents()) * 3600;
    let den = i128::from(secs);
    Some(Credits::from_millicents(
        div_round_half_away(num, den) as i64
    ))
}

/// `num / den` rounded half away from zero, exactly. `den` must be
/// positive (durations are unsigned).
fn div_round_half_away(num: i128, den: i128) -> i128 {
    debug_assert!(den > 0, "durations are positive");
    let q = num.div_euclid(den);
    let r = num.rem_euclid(den); // 0 <= r < den
                                 // Round the non-negative remainder: up when it is at least half —
                                 // for negative `num` this is "away from zero" exactly when the
                                 // remainder strictly exceeds half, so compare against parity.
    if num >= 0 {
        if 2 * r >= den {
            q + 1
        } else {
            q
        }
    } else if 2 * r > den {
        q + 1
    } else {
        q
    }
}

/// Distribution statistics over a set of wages (dollars/hour as `f64` for
/// the indices; exact money stays in [`Credits`] upstream).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WageStats {
    /// Number of workers measured (always ≥ 1; see [`WageStats::from_wages`]).
    pub n: usize,
    /// Mean hourly wage in dollars.
    pub mean: f64,
    /// Median hourly wage in dollars.
    pub median: f64,
    /// 10th percentile (the "worst-off worker" view fairness cares about).
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Gini coefficient of the wage distribution.
    pub gini: f64,
    /// Theil T index.
    pub theil: f64,
    /// Jain's fairness index.
    pub jain: f64,
}

impl WageStats {
    /// Compute statistics from per-worker hourly wages.
    ///
    /// Returns `None` for an empty distribution: with nobody measured
    /// there is no inequality to report, and the previous behaviour —
    /// `gini: 0.0, jain: 1.0`, i.e. *perfect fairness* — fabricated
    /// evidence that sweep folds then averaged into cell aggregates.
    /// Callers fold wage statistics only over runs that actually paid
    /// someone.
    pub fn from_wages(wages: &[Credits]) -> Option<WageStats> {
        if wages.is_empty() {
            return None;
        }
        let xs: Vec<f64> = wages.iter().map(|c| c.as_dollars_f64()).collect();
        Some(WageStats {
            n: xs.len(),
            mean: stats::mean(&xs),
            median: stats::median(&xs),
            p10: stats::percentile(&xs, 10.0),
            p90: stats::percentile(&xs, 90.0),
            gini: stats::gini(&xs),
            theil: stats::theil(&xs),
            jain: stats::jain_index(&xs),
        })
    }

    /// Compute statistics from (earned, worked) pairs, skipping workers
    /// with no invested time. `None` when no worker invested any time.
    pub fn from_earnings(pairs: &[(Credits, SimDuration)]) -> Option<WageStats> {
        let wages: Vec<Credits> = pairs
            .iter()
            .filter_map(|&(earned, worked)| hourly_wage(earned, worked))
            .collect();
        Self::from_wages(&wages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_wage_basic() {
        // 30 cents for 15 minutes -> $1.20/h
        let w = hourly_wage(Credits::from_cents(30), SimDuration::from_mins(15)).unwrap();
        assert_eq!(w, Credits::from_cents(120));
        assert!(hourly_wage(Credits::from_cents(30), SimDuration::ZERO).is_none());
    }

    #[test]
    fn hourly_wage_is_exactly_rounded() {
        // 1 millicent over 7 seconds -> 3600/7 = 514.28… -> 514
        assert_eq!(
            hourly_wage(Credits::from_millicents(1), SimDuration::from_secs(7)),
            Some(Credits::from_millicents(514))
        );
        // 1 millicent over 2400 s -> 1.5 -> rounds half away to 2
        assert_eq!(
            hourly_wage(Credits::from_millicents(1), SimDuration::from_secs(2400)),
            Some(Credits::from_millicents(2))
        );
        // Negative amounts (clawbacks) round away from zero too.
        assert_eq!(
            hourly_wage(Credits::from_millicents(-1), SimDuration::from_secs(2400)),
            Some(Credits::from_millicents(-2))
        );
        // The f64-reciprocal path this replaces got large values wrong;
        // the integer path is exact even near i64 scale.
        let big = Credits::from_millicents(3_000_000_000_000_037);
        let w = hourly_wage(big, SimDuration::from_hours(1)).unwrap();
        assert_eq!(w, big);
    }

    #[test]
    fn stats_on_equal_wages() {
        let wages = vec![Credits::from_dollars(6); 5];
        let s = WageStats::from_wages(&wages).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 6.0).abs() < 1e-9);
        assert!((s.gini).abs() < 1e-9);
        assert!((s.jain - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_detect_inequality() {
        let unequal = vec![
            Credits::from_dollars(1),
            Credits::from_dollars(1),
            Credits::from_dollars(20),
        ];
        let s = WageStats::from_wages(&unequal).unwrap();
        assert!(s.gini > 0.3);
        assert!(s.jain < 0.7);
        assert!(s.theil > 0.0);
        assert!(s.p90 > s.p10);
    }

    #[test]
    fn from_earnings_skips_zero_time() {
        let pairs = vec![
            (Credits::from_cents(60), SimDuration::from_mins(30)), // $1.20/h
            (Credits::from_cents(100), SimDuration::ZERO),         // skipped
        ];
        let s = WageStats::from_earnings(&pairs).unwrap();
        assert_eq!(s.n, 1);
        assert!((s.mean - 1.2).abs() < 1e-9);
    }

    #[test]
    fn empty_distribution_has_no_stats() {
        // The regression this pins: an empty wage set must NOT score as
        // perfectly fair (gini 0 / jain 1) — it has no score at all.
        assert_eq!(WageStats::from_wages(&[]), None);
        assert_eq!(
            WageStats::from_earnings(&[(Credits::from_cents(9), SimDuration::ZERO)]),
            None
        );
    }
}
