//! Workers.
//!
//! A worker is the paper's tuple `(id_w, A_w, C_w, S_w)` (§3.2): identifier,
//! self-declared attributes, platform-computed attributes, and a skill
//! vector capturing "the interest of w in the skill keyword s_j".

use crate::attributes::{ComputedAttrs, DeclaredAttrs};
use crate::ids::WorkerId;
use crate::skills::SkillVector;
use crate::task::Task;
use serde::{Deserialize, Serialize};

/// A crowd worker: `(id_w, A_w, C_w, S_w)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Unique worker identifier `id_w`.
    pub id: WorkerId,
    /// Self-declared attributes `A_w` (demographics, location, …).
    pub declared: DeclaredAttrs,
    /// Platform-computed attributes `C_w` (acceptance ratio, …).
    pub computed: ComputedAttrs,
    /// Skill/interest vector `S_w`.
    pub skills: SkillVector,
}

impl Worker {
    /// A new worker with fresh computed attributes.
    pub fn new(id: WorkerId, declared: DeclaredAttrs, skills: SkillVector) -> Self {
        Worker {
            id,
            declared,
            computed: ComputedAttrs::fresh(),
            skills,
        }
    }

    /// The paper's qualification test: a worker qualifies for a task when
    /// her skill vector covers the task's required-skill vector.
    pub fn qualifies_for(&self, task: &Task) -> bool {
        self.skills.covers(&task.skills)
    }

    /// Composite worker-to-worker similarity used by Axiom 1: the minimum
    /// of the three component similarities (A_w, C_w, S_w). Axiom 1 fires
    /// only when **all three** are similar, so the weakest link governs.
    pub fn similarity(&self, other: &Worker) -> f64 {
        let a = self.declared.similarity(&other.declared);
        let c = self.computed.similarity(&other.computed);
        let s = self.skills.cosine(&other.skills);
        a.min(c).min(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttrValue;
    use crate::ids::{RequesterId, TaskId};
    use crate::money::Credits;
    use crate::skills::SkillVector;
    use crate::task::TaskBuilder;

    fn skills(bits: &[u8]) -> SkillVector {
        SkillVector::from_bools(bits.iter().map(|&b| b == 1))
    }

    fn worker(id: u32, bits: &[u8]) -> Worker {
        Worker::new(WorkerId::new(id), DeclaredAttrs::new(), skills(bits))
    }

    #[test]
    fn qualification_follows_skill_cover() {
        let w = worker(0, &[1, 1, 0]);
        let easy = TaskBuilder::new(
            TaskId::new(0),
            RequesterId::new(0),
            skills(&[1, 0, 0]),
            Credits::from_cents(5),
        )
        .build();
        let hard = TaskBuilder::new(
            TaskId::new(1),
            RequesterId::new(0),
            skills(&[1, 0, 1]),
            Credits::from_cents(5),
        )
        .build();
        assert!(w.qualifies_for(&easy));
        assert!(!w.qualifies_for(&hard));
    }

    #[test]
    fn identical_workers_have_similarity_one() {
        let a = worker(0, &[1, 0, 1]);
        let mut b = worker(1, &[1, 0, 1]);
        b.declared = a.declared.clone();
        b.computed = a.computed.clone();
        assert!((a.similarity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weakest_component_governs_similarity() {
        // Same skills and computed stats, different declared attributes.
        let mut a = worker(0, &[1, 1, 0]);
        let mut b = worker(1, &[1, 1, 0]);
        a.declared.set("country", AttrValue::Text("PH".into()));
        b.declared.set("country", AttrValue::Text("FR".into()));
        // declared similarity is 0 -> overall similarity is 0
        assert_eq!(a.similarity(&b), 0.0);
    }

    #[test]
    fn skill_divergence_lowers_similarity() {
        let a = worker(0, &[1, 1, 0, 0]);
        let b = worker(1, &[1, 0, 1, 0]);
        let s = a.similarity(&b);
        assert!(s > 0.0 && s < 1.0);
        // equals the cosine of the skill vectors since A and C match
        assert!((s - 0.5).abs() < 1e-12);
    }
}
