//! Property tests for the audit machinery: determinism, score bounds,
//! monotonicity of the enforcement repairs, and the invariants of
//! payment equalisation.

use faircrowd_core::enforce::equalize_payments;
use faircrowd_core::{AuditConfig, AuditEngine, SimilarityConfig};
use faircrowd_model::contribution::Contribution;
use faircrowd_model::ids::SubmissionId;
use faircrowd_model::money::Credits;
use proptest::prelude::*;

fn contribution_strategy() -> impl Strategy<Value = Contribution> {
    prop_oneof![
        (0u8..4).prop_map(Contribution::Label),
        (0u16..6, 0u16..6).prop_map(|(a, b)| {
            // tiny rankings drawn from a fixed item pool
            Contribution::Ranking(vec![a, b])
        }),
        (-100.0f64..100.0).prop_map(Contribution::Numeric),
    ]
}

fn planned_payments() -> impl Strategy<Value = Vec<(SubmissionId, Contribution, Credits)>> {
    prop::collection::vec((contribution_strategy(), 0i64..10_000), 0..10).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (c, pay))| {
                (
                    SubmissionId::new(i as u32),
                    c,
                    Credits::from_millicents(pay),
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Repair invariants: never lowers pay, is idempotent, and leaves
    /// every similar pair equal-paid.
    #[test]
    fn equalize_payments_invariants(subs in planned_payments(), threshold in 0.5f64..1.0) {
        let adjusted = equalize_payments(&subs, threshold);
        prop_assert_eq!(adjusted.len(), subs.len());
        // never lowers
        for (id, _, before) in &subs {
            prop_assert!(adjusted[id] >= *before);
        }
        // similar pairs equal
        for (i, (id_i, c_i, _)) in subs.iter().enumerate() {
            for (id_j, c_j, _) in subs.iter().skip(i + 1) {
                if c_i.similarity(c_j) >= threshold {
                    prop_assert_eq!(adjusted[id_i], adjusted[id_j]);
                }
            }
        }
        // idempotent
        let again_input: Vec<_> = subs
            .iter()
            .map(|(id, c, _)| (*id, c.clone(), adjusted[id]))
            .collect();
        let again = equalize_payments(&again_input, threshold);
        prop_assert_eq!(again, adjusted);
    }

    /// The audit engine is a pure function of (trace, config).
    #[test]
    fn audit_is_deterministic(seed in 0u64..50) {
        use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
        let cfg = ScenarioConfig {
            seed,
            rounds: 8,
            workers: vec![WorkerPopulation::diligent(6)],
            campaigns: vec![CampaignSpec::labeling("acme", 8, 10)],
            ..Default::default()
        };
        let trace = Simulation::new(cfg).run();
        let engine = AuditEngine::with_defaults();
        let r1 = engine.run(&trace);
        let r2 = engine.run(&trace);
        prop_assert_eq!(&r1, &r2);
        for axiom in &r1.axioms {
            prop_assert!((0.0..=1.0).contains(&axiom.score));
            prop_assert_eq!(axiom.truncated, axiom.violation_count > axiom.violations.len());
        }
    }

    /// Stricter similarity regimes never find *more* similar pairs for
    /// Axiom 1 than lenient ones (the quantifier domain shrinks).
    #[test]
    fn similarity_regime_orders_quantifier_domains(seed in 0u64..20) {
        use faircrowd_core::AxiomId;
        use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
        let cfg = ScenarioConfig {
            seed,
            rounds: 8,
            workers: vec![WorkerPopulation::diligent(8)],
            campaigns: vec![CampaignSpec::labeling("acme", 8, 10)],
            ..Default::default()
        };
        let trace = Simulation::new(cfg).run();
        let lenient = AuditEngine::new(AuditConfig {
            similarity: SimilarityConfig::lenient(),
            max_witnesses: 5,
            ..AuditConfig::default()
        })
        .run_axioms(&trace, &[AxiomId::A1WorkerAssignment]);
        let strict = AuditEngine::new(AuditConfig {
            similarity: SimilarityConfig::exact(),
            max_witnesses: 5,
            ..AuditConfig::default()
        })
        .run_axioms(&trace, &[AxiomId::A1WorkerAssignment]);
        let l = lenient.axiom(AxiomId::A1WorkerAssignment).unwrap();
        let s = strict.axiom(AxiomId::A1WorkerAssignment).unwrap();
        prop_assert!(s.checked <= l.checked, "exact regime must check fewer pairs");
    }
}
