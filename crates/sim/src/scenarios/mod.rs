//! The strategic scenario family — one file per scenario.
//!
//! Unlike the static presets in [`crate::catalog`], which *author* a
//! pathology into the configuration, each scenario here pins a
//! non-static [`crate::strategy::StrategyChoice`] and lets the
//! pathology **emerge** from the convergence loop ([`crate::converge`]):
//! the market is re-simulated under controller-updated strategy state
//! until agent behaviour reaches a fixed point, and the *converged*
//! market is what gets audited.
//!
//! Every scenario is a plain `pub fn config() -> ScenarioConfig` and is
//! addressable by name through [`crate::catalog::get`] exactly like the
//! static family — the catalog stays the single naming authority; this
//! module is just its strategic wing, split one-file-per-scenario so
//! each market design carries its own rationale.

pub mod s_price_war;
pub mod s_reform_rush;
pub mod s_super_turkers;
pub mod s_undercut_churn;
