//! The naive reference audit — the executable specification.
//!
//! These are the original, pre-index checker implementations: each one
//! re-derives the maps it needs straight from the [`Trace`] and scans
//! **all** worker/task/submission pairs with no blocking. They are kept
//! (not test-gated) for two jobs:
//!
//! * **correctness oracle** — the `index_equivalence` property tests
//!   assert that the indexed, blocked, parallel audit in
//!   [`crate::audit::AuditEngine`] produces bit-identical
//!   [`AxiomReport`]s to this path on arbitrary traces;
//! * **perf baseline** — `perf_audit` and the `BENCH_audit.json`
//!   harness measure the indexed path against this one, so speedups are
//!   tracked against a fixed reference rather than a moving target.
//!
//! Nothing else should call these: they are intentionally `O(n²)` and
//! re-derive per axiom. To stay a faithful *pre-refactor* baseline they
//! build their own per-axiom maps with the original single-purpose
//! loops below, rather than going through `Trace::event_index` (whose
//! one-pass builder materialises every derived structure at once).

use crate::axiom::{AxiomId, AxiomReport, ViolationCollector};
use crate::axioms::{set_jaccard, worker_similarity};
use faircrowd_model::contribution::Submission;
use faircrowd_model::disclosure::{Audience, DisclosureItem};
use faircrowd_model::event::EventKind;
use faircrowd_model::ids::{SubmissionId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;
use faircrowd_model::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};

/// The pre-refactor `Trace::visibility_map` loop.
fn visibility_map(trace: &Trace) -> BTreeMap<WorkerId, BTreeSet<TaskId>> {
    let mut map: BTreeMap<WorkerId, BTreeSet<TaskId>> = BTreeMap::new();
    for w in &trace.workers {
        map.entry(w.id).or_default();
    }
    for e in &trace.events {
        if let EventKind::TaskVisible { task, worker } = e.kind {
            map.entry(worker).or_default().insert(task);
        }
    }
    map
}

/// The pre-refactor `Trace::audience_map` loop.
fn audience_map(trace: &Trace) -> BTreeMap<TaskId, BTreeSet<WorkerId>> {
    let mut map: BTreeMap<TaskId, BTreeSet<WorkerId>> = BTreeMap::new();
    for t in &trace.tasks {
        map.entry(t.id).or_default();
    }
    for e in &trace.events {
        if let EventKind::TaskVisible { task, worker } = e.kind {
            map.entry(task).or_default().insert(worker);
        }
    }
    map
}

/// The pre-refactor `Trace::payment_by_submission` loop.
fn payment_by_submission(trace: &Trace) -> BTreeMap<SubmissionId, Credits> {
    let mut map: BTreeMap<SubmissionId, Credits> = BTreeMap::new();
    for e in &trace.events {
        if let EventKind::PaymentIssued {
            submission, amount, ..
        } = e.kind
        {
            *map.entry(submission).or_insert(Credits::ZERO) += amount;
        }
    }
    map
}

/// The pre-refactor `Trace::submissions_by_task` grouping.
fn submissions_by_task(trace: &Trace) -> BTreeMap<TaskId, Vec<&Submission>> {
    let mut map: BTreeMap<TaskId, Vec<&Submission>> = BTreeMap::new();
    for s in &trace.submissions {
        map.entry(s.task).or_default().push(s);
    }
    map
}

/// Check one axiom the naive way. Same contract as
/// [`crate::axiom::Axiom::check`], minus the index.
pub fn check(
    id: AxiomId,
    trace: &Trace,
    cfg: &SimilarityConfig,
    max_witnesses: usize,
) -> AxiomReport {
    match id {
        AxiomId::A1WorkerAssignment => a1(trace, cfg, max_witnesses),
        AxiomId::A2RequesterAssignment => a2(trace, cfg, max_witnesses),
        AxiomId::A3Compensation => a3(trace, cfg, max_witnesses),
        AxiomId::A4MaliceDetection => a4(trace, max_witnesses),
        AxiomId::A5NoInterruption => a5(trace, max_witnesses),
        AxiomId::A6RequesterTransparency => a6(trace, max_witnesses),
        AxiomId::A7PlatformTransparency => a7(trace, max_witnesses),
    }
}

fn a1(trace: &Trace, cfg: &SimilarityConfig, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A1WorkerAssignment;
    let visibility = visibility_map(trace);
    let qualified: Vec<BTreeSet<TaskId>> = trace
        .workers
        .iter()
        .map(|w| {
            trace
                .tasks
                .iter()
                .filter(|t| w.qualifies_for(t))
                .map(|t| t.id)
                .collect()
        })
        .collect();

    let mut overlaps = Vec::new();
    let mut collector = ViolationCollector::new(id, max_witnesses);
    for i in 0..trace.workers.len() {
        for j in (i + 1)..trace.workers.len() {
            let (wi, wj) = (&trace.workers[i], &trace.workers[j]);
            let sim = worker_similarity(wi, wj, cfg);
            if sim < cfg.worker_threshold {
                continue;
            }
            let common: BTreeSet<TaskId> =
                qualified[i].intersection(&qualified[j]).copied().collect();
            let empty = BTreeSet::new();
            let ai: BTreeSet<TaskId> = visibility
                .get(&wi.id)
                .unwrap_or(&empty)
                .intersection(&common)
                .copied()
                .collect();
            let aj: BTreeSet<TaskId> = visibility
                .get(&wj.id)
                .unwrap_or(&empty)
                .intersection(&common)
                .copied()
                .collect();
            let overlap = set_jaccard(&ai, &aj);
            overlaps.push(overlap);
            if overlap < 1.0 - 1e-9 {
                collector.push(
                    1.0 - overlap,
                    format!(
                        "workers {} and {} are similar (sim {:.2}) but saw different \
                         tasks: {} vs {} of {} common-qualified (overlap {:.2})",
                        wi.id,
                        wj.id,
                        sim,
                        ai.len(),
                        aj.len(),
                        common.len(),
                        overlap
                    ),
                );
            }
        }
    }

    if overlaps.is_empty() {
        return AxiomReport::vacuous(id, "no similar worker pairs in the trace");
    }
    AxiomReport {
        axiom: id,
        score: stats::mean(&overlaps),
        checked: overlaps.len(),
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![format!(
            "similarity: skills via {}, threshold {:.2}",
            cfg.skill_measure.name(),
            cfg.worker_threshold
        )],
    }
}

fn a2(trace: &Trace, cfg: &SimilarityConfig, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A2RequesterAssignment;
    let audience = audience_map(trace);
    let qualified: Vec<BTreeSet<WorkerId>> = trace
        .tasks
        .iter()
        .map(|t| {
            trace
                .workers
                .iter()
                .filter(|w| w.qualifies_for(t))
                .map(|w| w.id)
                .collect()
        })
        .collect();

    let mut overlaps = Vec::new();
    let mut collector = ViolationCollector::new(id, max_witnesses);
    for i in 0..trace.tasks.len() {
        for j in (i + 1)..trace.tasks.len() {
            let (ti, tj) = (&trace.tasks[i], &trace.tasks[j]);
            if ti.requester == tj.requester {
                continue;
            }
            let skill_sim = cfg.skill_measure.score(&ti.skills, &tj.skills);
            if skill_sim < cfg.task_skill_threshold
                || !ti.reward_comparable(tj, cfg.reward_tolerance)
            {
                continue;
            }
            let common: BTreeSet<WorkerId> =
                qualified[i].intersection(&qualified[j]).copied().collect();
            let empty = BTreeSet::new();
            let ai: BTreeSet<WorkerId> = audience
                .get(&ti.id)
                .unwrap_or(&empty)
                .intersection(&common)
                .copied()
                .collect();
            let aj: BTreeSet<WorkerId> = audience
                .get(&tj.id)
                .unwrap_or(&empty)
                .intersection(&common)
                .copied()
                .collect();
            let overlap = set_jaccard(&ai, &aj);
            overlaps.push(overlap);
            if overlap < 1.0 - 1e-9 {
                collector.push(
                    1.0 - overlap,
                    format!(
                        "tasks {} ({}) and {} ({}) are comparable (skill sim {:.2}, \
                         rewards {} vs {}) but reached different audiences \
                         ({} vs {} workers, overlap {:.2})",
                        ti.id,
                        ti.requester,
                        tj.id,
                        tj.requester,
                        skill_sim,
                        ti.reward,
                        tj.reward,
                        ai.len(),
                        aj.len(),
                        overlap
                    ),
                );
            }
        }
    }

    if overlaps.is_empty() {
        return AxiomReport::vacuous(id, "no comparable cross-requester task pairs in the trace");
    }
    AxiomReport {
        axiom: id,
        score: stats::mean(&overlaps),
        checked: overlaps.len(),
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![format!(
            "skill kernel {} ≥ {:.2}, reward tolerance {:.0}%",
            cfg.skill_measure.name(),
            cfg.task_skill_threshold,
            cfg.reward_tolerance * 100.0
        )],
    }
}

fn a3(trace: &Trace, cfg: &SimilarityConfig, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A3Compensation;
    let payments = payment_by_submission(trace);
    let by_task = submissions_by_task(trace);

    let mut pairs = 0usize;
    let mut satisfied = 0usize;
    let mut collector = ViolationCollector::new(id, max_witnesses);

    for (task, subs) in by_task {
        for i in 0..subs.len() {
            for j in (i + 1)..subs.len() {
                let (si, sj) = (subs[i], subs[j]);
                if si.worker == sj.worker {
                    continue;
                }
                let sim = si.contribution.similarity(&sj.contribution);
                if sim < cfg.contribution_threshold {
                    continue;
                }
                pairs += 1;
                let pi = payments.get(&si.id).copied().unwrap_or(Credits::ZERO);
                let pj = payments.get(&sj.id).copied().unwrap_or(Credits::ZERO);
                if pi == pj {
                    satisfied += 1;
                } else {
                    let max = pi.max(pj).millicents().max(1) as f64;
                    let severity = pi.abs_diff(pj).millicents() as f64 / max;
                    collector.push(
                        severity,
                        format!(
                            "task {task}: workers {} and {} made similar contributions \
                             (sim {:.2}) but were paid {} vs {}",
                            si.worker, sj.worker, sim, pi, pj
                        ),
                    );
                }
            }
        }
    }

    if pairs == 0 {
        return AxiomReport::vacuous(id, "no similar same-task contribution pairs in the trace");
    }
    AxiomReport {
        axiom: id,
        score: satisfied as f64 / pairs as f64,
        checked: pairs,
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![format!(
            "contribution similarity threshold {:.2} (kind-specific measures)",
            cfg.contribution_threshold
        )],
    }
}

fn a4(trace: &Trace, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A4MaliceDetection;
    let flagged: BTreeSet<WorkerId> = trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::WorkerFlagged { worker, .. } => Some(*worker),
            _ => None,
        })
        .collect();
    let malicious = &trace.ground_truth.malicious_workers;
    let active: BTreeSet<WorkerId> = trace.submissions.iter().map(|s| s.worker).collect();
    let active_malicious: BTreeSet<WorkerId> = malicious.intersection(&active).copied().collect();

    if active_malicious.is_empty() {
        let mut report = AxiomReport::vacuous(id, "no active malicious workers in the trace");
        if !flagged.is_empty() {
            report.notes.push(format!(
                "{} worker(s) flagged despite a clean workforce (false alarms)",
                flagged.len()
            ));
            report.score = 1.0 - flagged.len() as f64 / active.len().max(1) as f64;
        }
        return report;
    }

    let mut collector = ViolationCollector::new(id, max_witnesses);
    if flagged.is_empty() {
        collector.push(
            1.0,
            format!(
                "platform emitted no detection events while {} malicious worker(s) \
                 were active",
                active_malicious.len()
            ),
        );
        return AxiomReport {
            axiom: id,
            score: 0.0,
            checked: active.len(),
            violation_count: collector.total,
            truncated: false,
            violations: collector.items,
            notes: vec!["requesters had no means of detection".to_owned()],
        };
    }

    let tp = flagged.intersection(&active_malicious).count();
    let fp = flagged.difference(malicious).count();
    let fn_ = active_malicious.difference(&flagged).count();
    let precision = if tp + fp == 0 {
        1.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };

    for w in active_malicious.difference(&flagged) {
        collector.push(0.8, format!("malicious worker {w} was never flagged"));
    }
    for w in flagged.difference(malicious) {
        collector.push(0.4, format!("honest worker {w} was wrongly flagged"));
    }

    AxiomReport {
        axiom: id,
        score: f1,
        checked: active.len(),
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![format!(
            "detection precision {precision:.2}, recall {recall:.2} over {} active \
             malicious of {} active workers",
            active_malicious.len(),
            active.len()
        )],
    }
}

fn a5(trace: &Trace, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A5NoInterruption;
    let started = trace
        .events
        .count_where(|k| matches!(k, EventKind::WorkStarted { .. }));
    if started == 0 {
        return AxiomReport::vacuous(id, "no work was started in the trace");
    }

    let mut collector = ViolationCollector::new(id, max_witnesses);
    let mut weighted = 0.0f64;
    let mut uncompensated = 0usize;
    let mut compensated = 0usize;
    for e in &trace.events {
        if let EventKind::WorkInterrupted {
            task,
            worker,
            invested,
            compensated: comp,
        } = &e.kind
        {
            let severity = if *comp {
                compensated += 1;
                0.5
            } else {
                uncompensated += 1;
                1.0
            };
            weighted += severity;
            collector.push(
                severity,
                format!(
                    "worker {worker} was interrupted on task {task} after investing \
                     {invested}{}",
                    if *comp {
                        " (partially compensated)"
                    } else {
                        " (unpaid)"
                    }
                ),
            );
        }
    }

    AxiomReport {
        axiom: id,
        score: (1.0 - weighted / started as f64).clamp(0.0, 1.0),
        checked: started,
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![format!(
            "{started} work items started; {uncompensated} interrupted unpaid, \
             {compensated} interrupted with partial pay"
        )],
    }
}

fn a6(trace: &Trace, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A6RequesterTransparency;
    if trace.tasks.is_empty() {
        return AxiomReport::vacuous(id, "no tasks in the trace");
    }
    let mut coverages = Vec::with_capacity(trace.tasks.len());
    let mut collector = ViolationCollector::new(id, max_witnesses);
    for task in &trace.tasks {
        let mut missing = Vec::new();
        let mut met = 0usize;
        for (item, task_level) in super::a6::obligations(task) {
            if task_level || trace.disclosure.allows(item, Audience::Workers) {
                met += 1;
            } else {
                missing.push(item.name());
            }
        }
        let coverage = met as f64 / 5.0;
        coverages.push(coverage);
        if !missing.is_empty() {
            collector.push(
                1.0 - coverage,
                format!(
                    "task {} (requester {}) does not disclose: {}",
                    task.id,
                    task.requester,
                    missing.join(", ")
                ),
            );
        }
    }
    AxiomReport {
        axiom: id,
        score: stats::mean(&coverages),
        checked: trace.tasks.len(),
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes: vec![
            "an obligation is met by task-level conditions or a platform-wide grant".to_owned(),
        ],
    }
}

fn a7(trace: &Trace, max_witnesses: usize) -> AxiomReport {
    let id = AxiomId::A7PlatformTransparency;
    let coverage = trace.disclosure.axiom7_coverage();
    let mut collector = ViolationCollector::new(id, max_witnesses);
    for item in DisclosureItem::AXIOM7_REQUIRED {
        if !trace.disclosure.allows(item, Audience::Subject) {
            collector.push(
                1.0 / DisclosureItem::AXIOM7_REQUIRED.len() as f64,
                format!("computed attribute {item} is not disclosed to the worker"),
            );
        }
    }

    let active: BTreeSet<WorkerId> = trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SessionStarted { worker } => Some(*worker),
            _ => None,
        })
        .collect();
    let informed: BTreeSet<WorkerId> = trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::DisclosureShown { worker, .. } => Some(*worker),
            _ => None,
        })
        .collect();

    let evidence = if active.is_empty() {
        1.0
    } else {
        active.intersection(&informed).count() as f64 / active.len() as f64
    };
    if coverage > 0.0 && evidence < 1.0 {
        let uninformed = active.difference(&informed).count();
        collector.push(
            (1.0 - evidence).min(1.0),
            format!(
                "{uninformed} active worker(s) never saw any disclosure despite a \
                 non-empty policy"
            ),
        );
    }

    let mut notes = vec![format!(
        "policy coverage {coverage:.2}, delivery evidence {evidence:.2} over {} active \
         workers",
        active.len()
    )];
    if trace.tasks.is_empty() && active.is_empty() {
        notes.push("empty trace: judged on policy only".to_owned());
    }

    AxiomReport {
        axiom: id,
        score: (coverage * evidence).clamp(0.0, 1.0),
        checked: active.len().max(1),
        violation_count: collector.total,
        truncated: collector.truncated(),
        violations: collector.items,
        notes,
    }
}
