//! Contribution generation.
//!
//! Workers in the simulator produce contributions whose *objective quality*
//! is controlled by their archetype and motivation, so that Axiom-3 and
//! quality experiments have ground truth to compare against:
//!
//! * **labels** — drawn from a per-worker accuracy (confusion) model;
//! * **free text** — sampled from the task's reference word pool with
//!   noise words mixed in, so n-gram similarity to the reference tracks
//!   the intended quality;
//! * **rankings** — the reference permutation perturbed by random adjacent
//!   swaps (a Mallows-style noise model).

use faircrowd_model::contribution::Contribution;
use faircrowd_model::time::SimDuration;
use faircrowd_quality::spam::WorkerArchetype;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Reference material the generator needs per task: what a perfect
/// contribution looks like.
#[derive(Debug, Clone, PartialEq)]
pub enum Reference {
    /// True label.
    Label(u8, u8), // (true label, n classes)
    /// Reference text (the "ideal summary").
    Text(String),
    /// Reference ranking.
    Ranking(Vec<u16>),
    /// Survey: any good-faith answer is valid (label space of size k).
    Survey(u8),
}

/// Build a deterministic reference text for a task: a pool of topic words
/// keyed by the task index.
pub fn reference_text(task_index: u32) -> String {
    // A fixed vocabulary; each task draws a deterministic slice so
    // different tasks have different (but overlapping) references.
    const VOCAB: [&str; 24] = [
        "market",
        "worker",
        "task",
        "reward",
        "quality",
        "label",
        "image",
        "review",
        "summary",
        "fair",
        "payment",
        "platform",
        "requester",
        "skill",
        "survey",
        "answer",
        "crowd",
        "data",
        "report",
        "trust",
        "rating",
        "bonus",
        "time",
        "effort",
    ];
    let start = (task_index as usize * 7) % VOCAB.len();
    let words: Vec<&str> = (0..10)
        .map(|i| VOCAB[(start + i * 3) % VOCAB.len()])
        .collect();
    words.join(" ")
}

/// The worker's *intended* quality for this contribution in `[0, 1]`:
/// how close to perfect she is trying (and able) to get.
pub fn intended_quality(
    archetype: WorkerArchetype,
    base_accuracy: f64,
    motivation: f64,
    rng: &mut StdRng,
) -> f64 {
    match archetype {
        WorkerArchetype::Diligent | WorkerArchetype::Sloppy => {
            // Good-faith workers' effective quality responds to motivation
            // (the §4.1 quality-vs-fairness mechanism): a fully demotivated
            // worker loses a quarter of her accuracy.
            (base_accuracy * (0.75 + 0.25 * motivation.clamp(0.0, 1.0))).clamp(0.0, 1.0)
        }
        WorkerArchetype::RandomSpammer => rng.gen_range(0.0..0.3),
        WorkerArchetype::UniformSpammer => 0.0,
        WorkerArchetype::SemiRandomSpammer => {
            if rng.gen_bool(0.5) {
                base_accuracy
            } else {
                rng.gen_range(0.0..0.3)
            }
        }
    }
}

/// Generate a contribution against a reference at the given intended
/// quality.
pub fn contribution(
    reference: &Reference,
    archetype: WorkerArchetype,
    quality: f64,
    rng: &mut StdRng,
) -> Contribution {
    match reference {
        Reference::Label(truth, classes) => {
            let k = (*classes).max(2);
            let label = match archetype {
                WorkerArchetype::UniformSpammer => 0,
                _ => {
                    if rng.gen_bool(quality.clamp(0.0, 1.0)) {
                        *truth
                    } else {
                        // a wrong label, uniform over the others
                        let mut l = rng.gen_range(0..k);
                        if l == *truth {
                            l = (l + 1) % k;
                        }
                        l
                    }
                }
            };
            Contribution::Label(label)
        }
        Reference::Text(reference_text) => {
            let ref_words: Vec<&str> = reference_text.split_whitespace().collect();
            const NOISE: [&str; 8] = [
                "lorem", "ipsum", "qwerty", "zigzag", "foo", "bar", "baz", "blah",
            ];
            let mut words = Vec::with_capacity(ref_words.len());
            for w in &ref_words {
                if rng.gen_bool(quality.clamp(0.0, 1.0)) {
                    words.push(*w);
                } else {
                    words.push(NOISE[rng.gen_range(0..NOISE.len())]);
                }
            }
            if words.is_empty() {
                words.push(NOISE[0]);
            }
            Contribution::Text(words.join(" "))
        }
        Reference::Ranking(truth) => {
            let mut ranking = truth.clone();
            // number of adjacent swaps scales inversely with quality
            let max_swaps = ranking.len().saturating_sub(1) * 2;
            let swaps = ((1.0 - quality.clamp(0.0, 1.0)) * max_swaps as f64).round() as usize;
            for _ in 0..swaps {
                if ranking.len() >= 2 {
                    let i = rng.gen_range(0..ranking.len() - 1);
                    ranking.swap(i, i + 1);
                }
            }
            if archetype == WorkerArchetype::UniformSpammer {
                // uniform spammers submit the identity permutation
                let mut ident = truth.clone();
                ident.sort_unstable();
                return Contribution::Ranking(ident);
            }
            if archetype == WorkerArchetype::RandomSpammer {
                ranking.shuffle(rng);
            }
            Contribution::Ranking(ranking)
        }
        Reference::Survey(k) => {
            // any answer is valid; spammers still rush the same button
            let label = match archetype {
                WorkerArchetype::UniformSpammer => 0,
                _ => rng.gen_range(0..(*k).max(2)),
            };
            Contribution::Label(label)
        }
    }
}

/// Objective quality of a contribution against its reference (the measure
/// the Axiom-3 checker and E6 use).
pub fn objective_quality(reference: &Reference, c: &Contribution) -> f64 {
    match (reference, c) {
        (Reference::Label(truth, _), Contribution::Label(l)) => f64::from(l == truth),
        (Reference::Text(r), Contribution::Text(t)) => faircrowd_model::text::ngram_cosine(r, t, 3),
        (Reference::Ranking(r), Contribution::Ranking(got)) => {
            faircrowd_model::ranking::ranking_similarity(r, got)
        }
        (Reference::Survey(_), Contribution::Label(_)) => 1.0, // good-faith by definition
        _ => 0.0,
    }
}

/// How long the worker takes: honest workers take around the estimate
/// (scaled by diligence), spammers rush.
pub fn work_duration(
    archetype: WorkerArchetype,
    est: SimDuration,
    rng: &mut StdRng,
) -> SimDuration {
    let factor = match archetype {
        WorkerArchetype::Diligent => rng.gen_range(0.85..1.35),
        WorkerArchetype::Sloppy => rng.gen_range(0.5..0.9),
        WorkerArchetype::SemiRandomSpammer => rng.gen_range(0.2..0.6),
        WorkerArchetype::RandomSpammer | WorkerArchetype::UniformSpammer => {
            rng.gen_range(0.05..0.15)
        }
    };
    let d = est.mul_f64(factor);
    // nobody takes zero seconds
    SimDuration::from_secs(d.as_secs().max(5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn reference_text_is_deterministic_and_distinct() {
        assert_eq!(reference_text(3), reference_text(3));
        assert_ne!(reference_text(3), reference_text(4));
        assert_eq!(reference_text(0).split_whitespace().count(), 10);
    }

    #[test]
    fn diligent_quality_tracks_motivation() {
        let mut r = rng();
        let high = intended_quality(WorkerArchetype::Diligent, 0.9, 1.0, &mut r);
        let low = intended_quality(WorkerArchetype::Diligent, 0.9, 0.0, &mut r);
        assert!((high - 0.9).abs() < 1e-12);
        assert!((low - 0.9 * 0.75).abs() < 1e-12);
    }

    #[test]
    fn spammer_quality_is_low() {
        let mut r = rng();
        for _ in 0..20 {
            let q = intended_quality(WorkerArchetype::RandomSpammer, 0.9, 1.0, &mut r);
            assert!(q < 0.3);
            assert_eq!(
                intended_quality(WorkerArchetype::UniformSpammer, 0.9, 1.0, &mut r),
                0.0
            );
        }
    }

    #[test]
    fn label_generation_matches_quality() {
        let mut r = rng();
        let reference = Reference::Label(1, 2);
        let mut correct = 0;
        for _ in 0..1000 {
            let c = contribution(&reference, WorkerArchetype::Diligent, 0.8, &mut r);
            if objective_quality(&reference, &c) > 0.5 {
                correct += 1;
            }
        }
        let rate = correct as f64 / 1000.0;
        assert!((rate - 0.8).abs() < 0.05, "observed accuracy {rate}");
    }

    #[test]
    fn uniform_spammer_always_answers_zero() {
        let mut r = rng();
        let reference = Reference::Label(1, 4);
        for _ in 0..10 {
            let c = contribution(&reference, WorkerArchetype::UniformSpammer, 0.0, &mut r);
            assert_eq!(c, Contribution::Label(0));
        }
    }

    #[test]
    fn text_quality_scales_with_intent() {
        let mut r = rng();
        let reference = Reference::Text(reference_text(0));
        let good = contribution(&reference, WorkerArchetype::Diligent, 0.95, &mut r);
        let bad = contribution(&reference, WorkerArchetype::Diligent, 0.2, &mut r);
        assert!(objective_quality(&reference, &good) > objective_quality(&reference, &bad));
    }

    #[test]
    fn ranking_quality_scales_with_intent() {
        let mut r = rng();
        let reference = Reference::Ranking((0..8u16).collect());
        let good = contribution(&reference, WorkerArchetype::Diligent, 1.0, &mut r);
        let bad = contribution(&reference, WorkerArchetype::Diligent, 0.0, &mut r);
        let qg = objective_quality(&reference, &good);
        let qb = objective_quality(&reference, &bad);
        assert!((qg - 1.0).abs() < 1e-9, "perfect intent reproduces truth");
        assert!(qb < qg);
    }

    #[test]
    fn survey_answers_are_always_good_faith() {
        let mut r = rng();
        let reference = Reference::Survey(5);
        let c = contribution(&reference, WorkerArchetype::Sloppy, 0.5, &mut r);
        assert_eq!(objective_quality(&reference, &c), 1.0);
    }

    #[test]
    fn durations_rank_by_archetype() {
        let mut r = rng();
        let est = SimDuration::from_mins(10);
        let mut mean = |a: WorkerArchetype| -> f64 {
            (0..200)
                .map(|_| work_duration(a, est, &mut r).as_secs() as f64)
                .sum::<f64>()
                / 200.0
        };
        let diligent = mean(WorkerArchetype::Diligent);
        let sloppy = mean(WorkerArchetype::Sloppy);
        let spam = mean(WorkerArchetype::RandomSpammer);
        assert!(diligent > sloppy && sloppy > spam);
        assert!(spam >= 5.0, "floor of 5 seconds");
    }

    #[test]
    fn mismatched_contribution_kind_scores_zero() {
        let reference = Reference::Label(0, 2);
        assert_eq!(
            objective_quality(&reference, &Contribution::Text("x".into())),
            0.0
        );
    }
}
