//! Karger–Oh–Shah iterative decoding.
//!
//! The inference half of the budget-optimal crowdsourcing scheme the paper
//! cites as \[11\] (Karger, Oh, Shah — *Budget-optimal task allocation for
//! reliable crowdsourcing systems*, Operations Research 2014). For binary
//! tasks, answers `A_ij ∈ {±1}` on the worker–task bipartite graph are
//! decoded by belief-propagation-style message passing:
//!
//! ```text
//! x_{i→j} = Σ_{j'∈∂i\j} A_{ij'} · y_{j'→i}     (task-to-worker)
//! y_{j→i} = Σ_{i'∈∂j\i} A_{i'j} · x_{i'→j}     (worker-to-task)
//! label_i = sign( Σ_{j∈∂i} A_{ij} · y_{j→i} )
//! ```
//!
//! The allocation half ((l,r)-regular random graphs) lives in
//! `faircrowd_assign::kos`; this decoder works on any answer graph.

use crate::answers::AnswerSet;
use faircrowd_model::ids::{TaskId, WorkerId};
use std::collections::BTreeMap;

/// Result of KOS decoding.
#[derive(Debug, Clone)]
pub struct KosResult {
    /// Decoded label per task (binary: 0 or 1).
    pub labels: BTreeMap<TaskId, u8>,
    /// Final per-task decision margins (confidence magnitude).
    pub margins: BTreeMap<TaskId, f64>,
    /// Per-worker reliability proxy: mean final worker-to-task message.
    pub worker_scores: BTreeMap<WorkerId, f64>,
}

/// Decode a binary answer set with `iters` rounds of message passing.
///
/// Panics if the answer set has more than 2 classes — KOS is a binary
/// decoder; use Dawid–Skene for multiclass.
pub fn decode(answers: &AnswerSet, iters: usize) -> KosResult {
    assert!(
        answers.classes() == 2,
        "KOS decoding requires binary tasks (got {} classes)",
        answers.classes()
    );
    let tasks = answers.tasks();
    let workers = answers.workers();
    let t_index: BTreeMap<TaskId, usize> = tasks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let w_index: BTreeMap<WorkerId, usize> =
        workers.iter().enumerate().map(|(i, &w)| (w, i)).collect();

    // Edge list with spin answers (+1 for label 1, -1 for label 0).
    struct Edge {
        task: usize,
        worker: usize,
        spin: f64,
    }
    let edges: Vec<Edge> = answers
        .answers()
        .iter()
        .map(|a| Edge {
            task: t_index[&a.task],
            worker: w_index[&a.worker],
            spin: if a.label == 1 { 1.0 } else { -1.0 },
        })
        .collect();

    let mut edges_of_task: Vec<Vec<usize>> = vec![Vec::new(); tasks.len()];
    let mut edges_of_worker: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
    for (ei, e) in edges.iter().enumerate() {
        edges_of_task[e.task].push(ei);
        edges_of_worker[e.worker].push(ei);
    }

    // Deterministic initialisation: all worker-to-task messages start at 1
    // (the standard choice when reproducibility matters more than
    // symmetry-breaking; ties then resolve toward label 0).
    let mut y = vec![1.0f64; edges.len()];
    let mut x = vec![0.0f64; edges.len()];

    for _ in 0..iters {
        // Task-to-worker update.
        for (ti, es) in edges_of_task.iter().enumerate() {
            let total: f64 = es.iter().map(|&ei| edges[ei].spin * y[ei]).sum();
            for &ei in es {
                debug_assert_eq!(edges[ei].task, ti);
                x[ei] = total - edges[ei].spin * y[ei];
            }
        }
        // Worker-to-task update.
        for es in edges_of_worker.iter() {
            let total: f64 = es.iter().map(|&ei| edges[ei].spin * x[ei]).sum();
            for &ei in es {
                y[ei] = total - edges[ei].spin * x[ei];
            }
        }
        // Normalise message magnitude to keep values bounded across
        // iterations (scale-invariant decision rule).
        let max_mag = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        if max_mag > 0.0 {
            for v in &mut y {
                *v /= max_mag;
            }
        }
    }

    let mut labels = BTreeMap::new();
    let mut margins = BTreeMap::new();
    for (ti, es) in edges_of_task.iter().enumerate() {
        let decision: f64 = es.iter().map(|&ei| edges[ei].spin * y[ei]).sum();
        labels.insert(tasks[ti], u8::from(decision > 0.0));
        margins.insert(tasks[ti], decision.abs());
    }

    let worker_scores = workers
        .iter()
        .enumerate()
        .map(|(wi, &w)| {
            let es = &edges_of_worker[wi];
            let mean = if es.is_empty() {
                0.0
            } else {
                es.iter().map(|&ei| y[ei]).sum::<f64>() / es.len() as f64
            };
            (w, mean)
        })
        .collect();

    KosResult {
        labels,
        margins,
        worker_scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn unanimous_answers_decode_trivially() {
        let mut s = AnswerSet::new(2);
        for wi in 0..3 {
            s.record(w(wi), t(0), 1);
            s.record(w(wi), t(1), 0);
        }
        let res = decode(&s, 5);
        assert_eq!(res.labels[&t(0)], 1);
        assert_eq!(res.labels[&t(1)], 0);
    }

    #[test]
    fn downweights_contrarian_worker() {
        // 3 workers agree across 10 tasks, 1 worker always disagrees.
        let mut rng = StdRng::seed_from_u64(2);
        let truth: Vec<u8> = (0..10).map(|_| rng.gen_range(0..2u8)).collect();
        let mut s = AnswerSet::new(2);
        for (ti, &tl) in truth.iter().enumerate() {
            for wi in 0..3 {
                s.record(w(wi), t(ti as u32), tl);
            }
            s.record(w(3), t(ti as u32), 1 - tl);
        }
        let res = decode(&s, 10);
        for (ti, &tl) in truth.iter().enumerate() {
            assert_eq!(res.labels[&t(ti as u32)], tl);
        }
        // contrarian's score should be lower than the faithful workers'
        let good = res.worker_scores[&w(0)];
        let bad = res.worker_scores[&w(3)];
        assert!(good > bad, "good {good:.3} vs contrarian {bad:.3}");
    }

    #[test]
    fn accuracy_beats_chance_with_noisy_crowd() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 60u32;
        let truth: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2u8)).collect();
        let mut s = AnswerSet::new(2);
        for ti in 0..n {
            for wi in 0..7u32 {
                let acc = if wi < 5 { 0.8 } else { 0.5 };
                let label = if rng.gen_bool(acc) {
                    truth[ti as usize]
                } else {
                    1 - truth[ti as usize]
                };
                s.record(w(wi), t(ti), label);
            }
        }
        let res = decode(&s, 10);
        let correct = truth
            .iter()
            .enumerate()
            .filter(|(i, &tl)| res.labels[&t(*i as u32)] == tl)
            .count();
        assert!(correct as f64 / n as f64 > 0.85, "{correct}/{n}");
    }

    #[test]
    fn margins_are_nonnegative() {
        let mut s = AnswerSet::new(2);
        s.record(w(0), t(0), 1);
        s.record(w(1), t(0), 0);
        let res = decode(&s, 3);
        for &m in res.margins.values() {
            assert!(m >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn multiclass_is_rejected() {
        let s = AnswerSet::new(3);
        let _ = decode(&s, 3);
    }

    #[test]
    fn empty_input() {
        let res = decode(&AnswerSet::new(2), 5);
        assert!(res.labels.is_empty());
        assert!(res.worker_scores.is_empty());
    }
}
