//! Axiom 7 — platform transparency.
//!
//! *"The platform must disclose, for each worker w, computed attributes
//! Cw such as performance and acceptance ratio."*
//!
//! Two components multiply into the score:
//!
//! * **policy coverage** — which of the canonical computed attributes the
//!   platform's disclosure set lets a worker see about herself
//!   ([`DisclosureItem::AXIOM7_REQUIRED`]);
//! * **delivery evidence** — among workers who actually had sessions, the
//!   fraction that received at least one `DisclosureShown` event. A policy
//!   that grants access nobody ever renders is transparency on paper only.

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::TraceIndex;
use faircrowd_model::disclosure::{Audience, DisclosureItem};
use faircrowd_model::similarity::SimilarityConfig;

/// Checker for Axiom 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlatformTransparency;

impl Axiom for PlatformTransparency {
    fn id(&self) -> AxiomId {
        AxiomId::A7PlatformTransparency
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        _cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let trace = ix.trace();
        let coverage = trace.disclosure.axiom7_coverage();
        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        for item in DisclosureItem::AXIOM7_REQUIRED {
            if !trace.disclosure.allows(item, Audience::Subject) {
                collector.push(
                    1.0 / DisclosureItem::AXIOM7_REQUIRED.len() as f64,
                    format!("computed attribute {item} is not disclosed to the worker"),
                );
            }
        }

        let active = ix.session_workers();
        let informed = ix.informed_workers();

        let evidence = if active.is_empty() {
            1.0 // nobody to inform
        } else {
            active.intersection(informed).count() as f64 / active.len() as f64
        };
        if coverage > 0.0 && evidence < 1.0 {
            let uninformed = active.difference(informed).count();
            collector.push(
                (1.0 - evidence).min(1.0),
                format!(
                    "{uninformed} active worker(s) never saw any disclosure despite a \
                     non-empty policy"
                ),
            );
        }

        let mut notes = vec![format!(
            "policy coverage {coverage:.2}, delivery evidence {evidence:.2} over {} active \
             workers",
            active.len()
        )];
        if trace.tasks.is_empty() && active.is_empty() {
            notes.push("empty trace: judged on policy only".to_owned());
        }

        AxiomReport {
            axiom: self.id(),
            score: (coverage * evidence).clamp(0.0, 1.0),
            checked: active.len().max(1),
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::disclosure::DisclosureSet;
    use faircrowd_model::event::EventKind;
    use faircrowd_model::time::SimTime;
    use faircrowd_model::trace::Trace;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    fn session(trace: &mut Trace, at: u64, worker_id: u32) {
        trace.events.push(
            SimTime::from_secs(at),
            EventKind::SessionStarted {
                worker: w(worker_id),
            },
        );
    }

    fn shown(trace: &mut Trace, at: u64, worker_id: u32) {
        trace.events.push(
            SimTime::from_secs(at),
            EventKind::DisclosureShown {
                worker: w(worker_id),
                item: DisclosureItem::WorkerAcceptanceRatio,
            },
        );
    }

    #[test]
    fn transparent_and_delivered_scores_one() {
        let mut trace = skeleton(vec![]);
        trace.disclosure = DisclosureSet::fully_transparent();
        session(&mut trace, 1, 0);
        shown(&mut trace, 1, 0);
        session(&mut trace, 2, 1);
        shown(&mut trace, 2, 1);
        let r = PlatformTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert!(r.holds());
    }

    #[test]
    fn opaque_platform_scores_zero() {
        let mut trace = skeleton(vec![]);
        trace.disclosure = DisclosureSet::opaque();
        session(&mut trace, 1, 0);
        let r = PlatformTransparency.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.score, 0.0);
        assert_eq!(
            r.violation_count,
            DisclosureItem::AXIOM7_REQUIRED.len(),
            "every required attribute is missing"
        );
    }

    #[test]
    fn paper_transparency_without_delivery_is_penalised() {
        let mut trace = skeleton(vec![]);
        trace.disclosure = DisclosureSet::fully_transparent();
        session(&mut trace, 1, 0);
        session(&mut trace, 2, 1);
        shown(&mut trace, 2, 1); // only w1 ever saw anything
        let r = PlatformTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.5).abs() < 1e-12);
        assert!(r
            .violations
            .iter()
            .any(|v| v.description.contains("never saw any disclosure")));
    }

    #[test]
    fn partial_policy_partial_score() {
        let mut trace = skeleton(vec![]);
        trace.disclosure = DisclosureSet::opaque()
            .with(DisclosureItem::WorkerAcceptanceRatio, Audience::Subject)
            .with(DisclosureItem::WorkerQualityEstimate, Audience::Subject)
            .with(DisclosureItem::WorkerHistory, Audience::Subject);
        session(&mut trace, 1, 0);
        shown(&mut trace, 1, 0);
        session(&mut trace, 1, 1);
        shown(&mut trace, 1, 1);
        let r = PlatformTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 0.5).abs() < 1e-12);
        assert_eq!(r.violation_count, 3);
    }

    #[test]
    fn empty_trace_judged_on_policy() {
        let trace = Trace {
            disclosure: DisclosureSet::fully_transparent(),
            ..Trace::default()
        };
        let r = PlatformTransparency.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
    }
}
