//! Hand-built traces with known violations, shared by the axiom tests.

use faircrowd_model::attributes::DeclaredAttrs;
use faircrowd_model::contribution::{Contribution, Submission};
use faircrowd_model::event::EventKind;
use faircrowd_model::ids::{RequesterId, SubmissionId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::requester::Requester;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::task::{Task, TaskBuilder};
use faircrowd_model::time::SimTime;
use faircrowd_model::trace::Trace;
use faircrowd_model::worker::Worker;

pub fn w(i: u32) -> WorkerId {
    WorkerId::new(i)
}
pub fn t(i: u32) -> TaskId {
    TaskId::new(i)
}
pub fn sub(i: u32) -> SubmissionId {
    SubmissionId::new(i)
}

/// A worker with the given skill bits (identical declared/computed attrs).
pub fn worker(i: u32, bits: &[u8]) -> Worker {
    Worker::new(
        w(i),
        DeclaredAttrs::new(),
        SkillVector::from_bools(bits.iter().map(|&b| b == 1)),
    )
}

/// A basic labeling task.
pub fn task(i: u32, requester: u32, bits: &[u8], reward_cents: i64) -> Task {
    TaskBuilder::new(
        t(i),
        RequesterId::new(requester),
        SkillVector::from_bools(bits.iter().map(|&b| b == 1)),
        Credits::from_cents(reward_cents),
    )
    .build()
}

/// A trace skeleton with two identical workers, two requesters and the
/// given tasks; tests then append the events they need.
pub fn skeleton(tasks: Vec<Task>) -> Trace {
    Trace {
        workers: vec![worker(0, &[1, 1]), worker(1, &[1, 1])],
        tasks,
        requesters: vec![
            Requester::new(RequesterId::new(0), "r0"),
            Requester::new(RequesterId::new(1), "r1"),
        ],
        ..Trace::default()
    }
}

/// Append a visibility event.
pub fn show(trace: &mut Trace, at: u64, task_id: u32, worker_id: u32) {
    trace.events.push(
        SimTime::from_secs(at),
        EventKind::TaskVisible {
            task: t(task_id),
            worker: w(worker_id),
        },
    );
}

/// Append a submission record plus its received event; returns the id.
pub fn submit(
    trace: &mut Trace,
    at: u64,
    task_id: u32,
    worker_id: u32,
    contribution: Contribution,
) -> SubmissionId {
    let id = sub(trace.submissions.len() as u32);
    trace.submissions.push(Submission {
        id,
        task: t(task_id),
        worker: w(worker_id),
        contribution,
        started_at: SimTime::from_secs(at.saturating_sub(60)),
        submitted_at: SimTime::from_secs(at),
    });
    trace.events.push(
        SimTime::from_secs(at),
        EventKind::SubmissionReceived {
            submission: id,
            task: t(task_id),
            worker: w(worker_id),
        },
    );
    id
}

/// Append a payment event.
pub fn pay(trace: &mut Trace, at: u64, submission: SubmissionId, worker_id: u32, cents: i64) {
    let task = trace
        .submissions
        .iter()
        .find(|s| s.id == submission)
        .map(|s| s.task)
        .unwrap_or(t(0));
    trace.events.push(
        SimTime::from_secs(at),
        EventKind::PaymentIssued {
            submission,
            task,
            worker: w(worker_id),
            amount: Credits::from_cents(cents),
        },
    );
}
