//! Scenario configuration.
//!
//! A [`ScenarioConfig`] fully determines a simulation run (the seed
//! included): the worker population mix, the campaigns requesters post,
//! the assignment policy, the compensation and approval rules, the
//! cancellation policy, the disclosure set the platform operates under,
//! and the detection sweep. Experiments are written as config deltas.

use faircrowd_assign::{
    AssignmentPolicy, BudgetDiverse, ExposureFloor, ExposureParity, FairDelivery, KosAllocation,
    OnlineMatching, RequesterCentric, RoundRobin, SelfSelection, WorkerCentric,
};
use faircrowd_model::disclosure::DisclosureSet;
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::money::Credits;
use faircrowd_model::task::{TaskConditions, TaskKind};
use faircrowd_model::time::SimDuration;
use faircrowd_pay::scheme::{
    BonusPolicy, CompensationScheme, FixedPrice, PayContext, QualityBased,
};
use faircrowd_quality::spam::{SpamDetector, WorkerArchetype};
use serde::{Deserialize, Serialize};

pub use crate::strategy::StrategyChoice;

/// Which assignment policy a scenario runs. An enum (rather than a trait
/// object) so configurations stay serialisable and benches can sweep it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// Post-and-browse (§3.1.1's fair baseline).
    SelfSelection,
    /// Equitable rotation.
    RoundRobin,
    /// Greedy requester-utility maximisation.
    RequesterCentric,
    /// Online greedy (Ho–Vaughan-style).
    OnlineGreedy,
    /// Exact matching on worker preference.
    WorkerCentric,
    /// Karger–Oh–Shah (l, r)-regular allocation.
    Kos {
        /// Workers per task.
        l: u32,
        /// Max tasks per worker.
        r: u32,
    },
    /// Axiom-1 exposure-parity enforcement over a base policy.
    ParityOver(Box<PolicyChoice>),
    /// Minimum-exposure floor over a base policy.
    FloorOver(Box<PolicyChoice>, usize),
    /// Budget- and diversity-constrained selection (Goel–Faltings).
    BudgetDiverse,
    /// Fair-allocation utility balancing (Basık et al.).
    FairDelivery,
}

impl PolicyChoice {
    /// Instantiate the policy.
    pub fn build(&self) -> Box<dyn AssignmentPolicy> {
        match self {
            PolicyChoice::SelfSelection => Box::new(SelfSelection),
            PolicyChoice::RoundRobin => Box::new(RoundRobin),
            PolicyChoice::RequesterCentric => Box::new(RequesterCentric),
            PolicyChoice::OnlineGreedy => Box::new(OnlineMatching),
            PolicyChoice::WorkerCentric => Box::new(WorkerCentric),
            PolicyChoice::Kos { l, r } => Box::new(KosAllocation { l: *l, r: *r }),
            PolicyChoice::ParityOver(base) => {
                Box::new(ExposureParity::new(DynPolicy(base.build())))
            }
            PolicyChoice::FloorOver(base, min) => Box::new(ExposureFloor {
                base: DynPolicy(base.build()),
                min_exposure: *min,
            }),
            PolicyChoice::BudgetDiverse => Box::new(BudgetDiverse::default()),
            PolicyChoice::FairDelivery => Box::new(FairDelivery::default()),
        }
    }

    /// Resolve a registry name (see [`faircrowd_assign::registry`]) into
    /// the serialisable policy choice, with the registry's default
    /// parameters for `kos`, `parity` and `floor`.
    ///
    /// Accepts the same spellings as the registry (`round_robin`,
    /// `round-robin`, any case) and reports the same
    /// [`FaircrowdError::UnknownPolicy`] on a miss, so the CLI and the
    /// `Pipeline` resolve names identically however the policy is built.
    pub fn by_name(name: &str) -> Result<Self, FaircrowdError> {
        use faircrowd_assign::registry;
        let choice = match registry::canonical(name).as_str() {
            "self_selection" => PolicyChoice::SelfSelection,
            "round_robin" => PolicyChoice::RoundRobin,
            "requester_centric" => PolicyChoice::RequesterCentric,
            "online_greedy" => PolicyChoice::OnlineGreedy,
            "worker_centric" => PolicyChoice::WorkerCentric,
            "kos" => PolicyChoice::Kos {
                l: registry::DEFAULT_KOS.0,
                r: registry::DEFAULT_KOS.1,
            },
            "parity" => PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)),
            "floor" => PolicyChoice::FloorOver(
                Box::new(PolicyChoice::RequesterCentric),
                registry::DEFAULT_FLOOR,
            ),
            "budget_diverse" => PolicyChoice::BudgetDiverse,
            "fair_delivery" => PolicyChoice::FairDelivery,
            _ => {
                return Err(FaircrowdError::UnknownPolicy {
                    name: name.to_owned(),
                    available: registry::NAMES.iter().map(|n| (*n).to_owned()).collect(),
                })
            }
        };
        Ok(choice)
    }

    /// Short display name for tables.
    pub fn label(&self) -> String {
        match self {
            PolicyChoice::SelfSelection => "self-selection".into(),
            PolicyChoice::RoundRobin => "round-robin".into(),
            PolicyChoice::RequesterCentric => "requester-centric".into(),
            PolicyChoice::OnlineGreedy => "online-greedy".into(),
            PolicyChoice::WorkerCentric => "worker-centric".into(),
            PolicyChoice::Kos { l, r } => format!("kos({l},{r})"),
            PolicyChoice::ParityOver(base) => format!("parity[{}]", base.label()),
            PolicyChoice::FloorOver(base, min) => format!("floor{min}[{}]", base.label()),
            PolicyChoice::BudgetDiverse => "budget-diverse".into(),
            PolicyChoice::FairDelivery => "fair-delivery".into(),
        }
    }
}

/// Newtype making a boxed policy usable where generic wrappers expect a
/// sized `AssignmentPolicy`.
struct DynPolicy(Box<dyn AssignmentPolicy>);

impl AssignmentPolicy for DynPolicy {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn assign(
        &mut self,
        input: &faircrowd_assign::AssignInput,
        rng: &mut dyn rand::RngCore,
    ) -> faircrowd_assign::AssignmentOutcome {
        self.0.assign(input, rng)
    }
}

/// A homogeneous slice of the worker population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPopulation {
    /// Number of workers in this slice.
    pub count: u32,
    /// Behavioural archetype (Vuurens taxonomy).
    pub archetype: WorkerArchetype,
    /// Probability each skill keyword is present in a worker's vector.
    pub skill_prob: f64,
    /// Probability the worker is online in a given round.
    pub participation: f64,
    /// Tasks the worker can take per round.
    pub capacity_per_round: u32,
}

impl WorkerPopulation {
    /// A diligent population with sensible defaults.
    pub fn diligent(count: u32) -> Self {
        WorkerPopulation {
            count,
            archetype: WorkerArchetype::Diligent,
            skill_prob: 0.6,
            participation: 0.8,
            capacity_per_round: 4,
        }
    }

    /// A population of the given archetype with default behaviour knobs.
    pub fn of(archetype: WorkerArchetype, count: u32) -> Self {
        WorkerPopulation {
            archetype,
            ..Self::diligent(count)
        }
    }
}

/// How a requester judges submissions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ApprovalPolicy {
    /// Approve everything.
    LenientAll,
    /// Approve when the (noisily) judged quality reaches `threshold`.
    QualityThreshold {
        /// Minimum judged quality to approve.
        threshold: f64,
        /// Half-width of uniform judgement noise.
        noise: f64,
        /// Whether rejections carry an explanation (the opacity lever of
        /// §3.1.2).
        give_feedback: bool,
    },
    /// Reject a random fraction of work regardless of quality — the
    /// "wrongful rejection" discrimination of §3.1.1.
    RandomReject {
        /// Probability a submission is rejected outright.
        reject_prob: f64,
        /// Whether rejections carry an explanation.
        give_feedback: bool,
    },
}

/// What a requester does when her campaign target is met while work is in
/// flight (§3.1.1 task-completion scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CancellationPolicy {
    /// Never cancel; every posted assignment runs to completion.
    RunToCompletion,
    /// Cancel immediately when the target is reached; in-flight workers
    /// are interrupted. `compensate_partial` decides whether they get a
    /// pro-rated payment for time invested.
    CancelAtTarget {
        /// Pay interrupted workers for invested time.
        compensate_partial: bool,
    },
    /// Stop exposing the task but let in-flight work finish and be paid
    /// (the Axiom-5-compliant design).
    GraceFinish,
}

/// Compensation scheme choice (serialisable mirror of `faircrowd-pay`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PaymentSchemeChoice {
    /// Advertised reward for every approved submission.
    Fixed,
    /// Quality-ramped payment (Wang–Ipeirotis–Provost style).
    QualityBased {
        /// Quality below this earns zero.
        floor: f64,
        /// Quality at/above this earns the full reward.
        full_quality: f64,
    },
}

impl PaymentSchemeChoice {
    /// Compute the payment for an approved submission.
    pub fn payout(&self, ctx: &PayContext) -> Credits {
        match self {
            PaymentSchemeChoice::Fixed => FixedPrice.payout(ctx),
            PaymentSchemeChoice::QualityBased {
                floor,
                full_quality,
            } => QualityBased {
                floor: *floor,
                full_quality: *full_quality,
            }
            .payout(ctx),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PaymentSchemeChoice::Fixed => "fixed".into(),
            PaymentSchemeChoice::QualityBased {
                floor,
                full_quality,
            } => {
                format!("quality({floor:.2},{full_quality:.2})")
            }
        }
    }
}

/// One campaign a requester posts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Requester display name (requesters are created per distinct name).
    pub requester: String,
    /// Number of tasks in the campaign.
    pub n_tasks: u32,
    /// Redundancy: assignments wanted per task.
    pub assignments_per_task: u32,
    /// Contribution kind.
    pub kind: TaskKind,
    /// Reward per assignment.
    pub reward: Credits,
    /// Honest completion time.
    pub est_duration: SimDuration,
    /// Skill keywords (indices into the universe) required per task;
    /// `skill_req_prob` of the universe is sampled per task.
    pub skill_req_prob: f64,
    /// Approved-submission target after which the requester cancels
    /// (`None` = run everything).
    pub target_approved: Option<u32>,
    /// Disclosed working conditions (Axiom 6 input).
    pub conditions: TaskConditions,
    /// Bonus promise, if any.
    pub bonus: Option<BonusPolicy>,
    /// Round at which the campaign is posted.
    pub post_round: u32,
}

impl CampaignSpec {
    /// A plain binary-labeling campaign with no cancellation and full
    /// disclosure.
    pub fn labeling(requester: &str, n_tasks: u32, reward_cents: i64) -> Self {
        CampaignSpec {
            requester: requester.to_owned(),
            n_tasks,
            assignments_per_task: 3,
            kind: TaskKind::Labeling { classes: 2 },
            reward: Credits::from_cents(reward_cents),
            est_duration: SimDuration::from_mins(5),
            skill_req_prob: 0.0,
            target_approved: None,
            conditions: TaskConditions::fully_disclosed(
                Credits::from_dollars(6),
                SimDuration::from_days(1),
            ),
            bonus: None,
            post_round: 0,
        }
    }
}

/// Detection sweep configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionConfig {
    /// The detector to run.
    pub detector: SpamDetector,
    /// Run every this many rounds.
    pub every_rounds: u32,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig {
            detector: SpamDetector::default(),
            every_rounds: 8,
        }
    }
}

/// A complete, reproducible scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed — the only source of randomness.
    pub seed: u64,
    /// Simulated market rounds (1 round = 1 hour).
    pub rounds: u32,
    /// Number of skill keywords in the universe.
    pub n_skills: usize,
    /// Worker population slices.
    pub workers: Vec<WorkerPopulation>,
    /// Campaigns to post.
    pub campaigns: Vec<CampaignSpec>,
    /// Assignment policy.
    pub policy: PolicyChoice,
    /// Platform disclosure configuration.
    pub disclosure: DisclosureSet,
    /// Requester approval behaviour.
    pub approval: ApprovalPolicy,
    /// Cancellation behaviour.
    pub cancellation: CancellationPolicy,
    /// Compensation scheme.
    pub payment: PaymentSchemeChoice,
    /// Rounds between submission and the approval decision.
    pub decision_delay_rounds: u32,
    /// Time until the platform auto-approves an unjudged submission.
    pub auto_approve_after: SimDuration,
    /// Detection sweep, if enabled.
    pub detection: Option<DetectionConfig>,
    /// Agent strategy profile. Defaults to [`StrategyChoice::Static`],
    /// the pre-strategy behaviour; absent in serialized configs written
    /// before the strategy layer existed.
    #[serde(default)]
    pub strategy: StrategyChoice,
}

impl ScenarioConfig {
    /// Check the configuration describes a runnable market. Collects
    /// every problem into one [`FaircrowdError::Config`] instead of
    /// letting the simulator panic or silently produce an empty trace.
    pub fn validate(&self) -> Result<(), FaircrowdError> {
        let mut problems: Vec<String> = Vec::new();
        if self.rounds == 0 {
            problems.push("rounds must be positive".into());
        }
        if self.n_skills == 0 && self.campaigns.iter().any(|c| c.skill_req_prob > 0.0) {
            problems.push(
                "n_skills is 0 but a campaign draws skill requirements (skill_req_prob > 0)".into(),
            );
        }
        if self.workers.iter().map(|p| u64::from(p.count)).sum::<u64>() == 0 {
            problems.push("worker population is empty".into());
        }
        for (i, pop) in self.workers.iter().enumerate() {
            if !(0.0..=1.0).contains(&pop.skill_prob) {
                problems.push(format!("workers[{i}].skill_prob outside [0, 1]"));
            }
            if !(0.0..=1.0).contains(&pop.participation) {
                problems.push(format!("workers[{i}].participation outside [0, 1]"));
            }
        }
        if self.campaigns.is_empty() {
            problems.push("no campaigns to post".into());
        }
        for (i, c) in self.campaigns.iter().enumerate() {
            if c.requester.is_empty() {
                problems.push(format!("campaigns[{i}].requester name is empty"));
            }
            if c.n_tasks == 0 {
                problems.push(format!("campaigns[{i}].n_tasks must be positive"));
            }
            if c.assignments_per_task == 0 {
                problems.push(format!(
                    "campaigns[{i}].assignments_per_task must be positive"
                ));
            }
            if !c.reward.is_positive() {
                problems.push(format!("campaigns[{i}].reward must be positive"));
            }
            if !(0.0..=1.0).contains(&c.skill_req_prob) {
                problems.push(format!("campaigns[{i}].skill_req_prob outside [0, 1]"));
            }
            if c.post_round >= self.rounds {
                problems.push(format!(
                    "campaigns[{i}].post_round {} is beyond the last round {}",
                    c.post_round,
                    self.rounds.saturating_sub(1)
                ));
            }
        }
        if let PolicyChoice::Kos { l, r } = &self.policy {
            if *l == 0 || *r == 0 {
                problems.push("kos policy requires positive (l, r)".into());
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(FaircrowdError::Config {
                message: problems.join("; "),
            })
        }
    }
}

impl ScenarioConfig {
    /// The same marketplace at `factor`× scale: worker-population
    /// counts, campaign task counts and cancel-at-target thresholds are
    /// multiplied (rounded, floored at 1 so a scaled scenario stays
    /// runnable), everything else — rates, rewards, policies — is left
    /// untouched. This is the `scale` axis of the sweep grid: one
    /// scenario shape probed at growing sizes.
    #[must_use]
    pub fn at_scale(&self, factor: f64) -> ScenarioConfig {
        let scale_u32 = |n: u32| -> u32 { ((f64::from(n) * factor).round() as u32).max(1) };
        let mut scaled = self.clone();
        for pop in &mut scaled.workers {
            pop.count = scale_u32(pop.count);
        }
        for campaign in &mut scaled.campaigns {
            campaign.n_tasks = scale_u32(campaign.n_tasks);
            // Targets scale with the work, or a bigger market would
            // cancel proportionally earlier (and a smaller one never).
            campaign.target_approved = campaign.target_approved.map(scale_u32);
        }
        scaled
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            rounds: 48,
            n_skills: 8,
            workers: vec![WorkerPopulation::diligent(20)],
            campaigns: vec![CampaignSpec::labeling("acme", 30, 10)],
            policy: PolicyChoice::SelfSelection,
            disclosure: DisclosureSet::fully_transparent(),
            approval: ApprovalPolicy::QualityThreshold {
                threshold: 0.5,
                noise: 0.1,
                give_feedback: true,
            },
            cancellation: CancellationPolicy::RunToCompletion,
            payment: PaymentSchemeChoice::Fixed,
            decision_delay_rounds: 2,
            auto_approve_after: SimDuration::from_days(3),
            detection: Some(DetectionConfig::default()),
            strategy: StrategyChoice::Static,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_choice_builds_and_labels() {
        let choices = vec![
            PolicyChoice::SelfSelection,
            PolicyChoice::RoundRobin,
            PolicyChoice::RequesterCentric,
            PolicyChoice::OnlineGreedy,
            PolicyChoice::WorkerCentric,
            PolicyChoice::Kos { l: 3, r: 5 },
            PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)),
            PolicyChoice::FloorOver(Box::new(PolicyChoice::OnlineGreedy), 4),
            PolicyChoice::BudgetDiverse,
            PolicyChoice::FairDelivery,
        ];
        for c in choices {
            let p = c.build();
            assert!(!p.name().is_empty());
            assert!(!c.label().is_empty());
        }
        assert_eq!(PolicyChoice::Kos { l: 3, r: 5 }.label(), "kos(3,5)");
        assert_eq!(
            PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)).label(),
            "parity[requester-centric]"
        );
    }

    #[test]
    fn payment_choice_mirrors_pay_crate() {
        let ctx = PayContext {
            task_reward: Credits::from_cents(100),
            quality: 0.7,
            work_duration: SimDuration::from_mins(5),
        };
        assert_eq!(
            PaymentSchemeChoice::Fixed.payout(&ctx),
            Credits::from_cents(100)
        );
        let qb = PaymentSchemeChoice::QualityBased {
            floor: 0.5,
            full_quality: 0.9,
        };
        assert_eq!(qb.payout(&ctx), Credits::from_cents(50));
    }

    #[test]
    fn default_config_is_consistent() {
        let cfg = ScenarioConfig::default();
        assert!(cfg.rounds > 0);
        assert!(!cfg.workers.is_empty());
        assert!(!cfg.campaigns.is_empty());
    }

    #[test]
    fn population_constructors() {
        let d = WorkerPopulation::diligent(10);
        assert_eq!(d.count, 10);
        assert_eq!(d.archetype, WorkerArchetype::Diligent);
        let s = WorkerPopulation::of(WorkerArchetype::UniformSpammer, 5);
        assert_eq!(s.archetype, WorkerArchetype::UniformSpammer);
        assert_eq!(s.participation, d.participation);
    }

    #[test]
    fn at_scale_multiplies_counts_only() {
        let base = ScenarioConfig::default();
        let doubled = base.at_scale(2.0);
        assert_eq!(doubled.workers[0].count, 2 * base.workers[0].count);
        assert_eq!(doubled.campaigns[0].n_tasks, 2 * base.campaigns[0].n_tasks);
        assert_eq!(doubled.rounds, base.rounds);
        assert_eq!(doubled.seed, base.seed);
        // Cancel-at-target thresholds scale with the work.
        let mut targeted = base.clone();
        targeted.campaigns[0].target_approved = Some(12);
        assert_eq!(
            targeted.at_scale(2.0).campaigns[0].target_approved,
            Some(24)
        );
        assert_eq!(doubled.campaigns[0].target_approved, None);
        // Tiny factors floor at 1 instead of emptying the market.
        let tiny = base.at_scale(0.001);
        assert_eq!(tiny.workers[0].count, 1);
        assert_eq!(tiny.campaigns[0].n_tasks, 1);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn labeling_campaign_defaults() {
        let c = CampaignSpec::labeling("acme", 20, 15);
        assert_eq!(c.n_tasks, 20);
        assert_eq!(c.reward, Credits::from_cents(15));
        assert!(c.target_approved.is_none());
        assert!((c.conditions.coverage() - 1.0).abs() < 1e-12);
    }
}
