//! Writes the strategy-convergence perf baseline (`BENCH_converge.json`).
//!
//! For every strategic catalog scenario at marketplace scales 1 / 4 /
//! 16, measures:
//!
//! * **iterations to fixed point** — how many outer simulation passes
//!   the proportional controller needs before the strategy-state
//!   residual drops under the default tolerance;
//! * **wall-clock** — median milliseconds for the whole converge loop;
//! * **byte-identical replay** — asserted in-binary before a number is
//!   printed: the converged trace round-trips the binary (`.fcb`)
//!   codec byte-for-byte, and replaying the decoded trace yields an
//!   audit report bit-identical to auditing the in-memory original
//!   (the paper's audit-external-logs workload, applied to a market
//!   that settled strategically).
//!
//! ```text
//! cargo run --release --bin converge_baseline > BENCH_converge.json
//! ```

use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::prelude::*;
use faircrowd::sim::{catalog, converge, ConvergeOptions};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let opts = ConvergeOptions::default();
    let mut rows = String::new();
    let mut first = true;
    for name in catalog::STRATEGIC_NAMES {
        for scale in [1.0, 4.0, 16.0] {
            let cfg = catalog::get(name)
                .expect("strategic catalog name")
                .at_scale(scale);
            let converged =
                converge::run(cfg.clone(), &opts).unwrap_or_else(|e| panic!("{name}: {e}"));

            // Replay gate: the fixed point must survive the binary
            // codec byte-for-byte and audit identically with no
            // simulator in the loop.
            let bytes = persist::encode_bytes(&converged.trace, TraceFormat::Binary);
            let decoded = persist::decode_bytes(&bytes).expect("decode converged trace");
            assert_eq!(
                persist::encode_bytes(&decoded, TraceFormat::Binary),
                bytes,
                "{name}@{scale}: .fcb round-trip must be byte-identical"
            );
            let direct = Pipeline::new()
                .replay_owned(converged.trace.clone())
                .expect("audit converged trace");
            let replayed = Pipeline::new()
                .replay_owned(decoded)
                .expect("audit decoded trace");
            assert_eq!(
                render_report(&replayed.report),
                render_report(&direct.report),
                "{name}@{scale}: replayed audit must be bit-identical"
            );

            let ms = median_ms(3, || {
                black_box(
                    converge::run(black_box(cfg.clone()), &opts).expect("converge for timing"),
                );
            });
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            let _ = write!(
                rows,
                "    {{\"scenario\": \"{name}\", \"scale\": {scale}, \
                 \"iterations\": {}, \"converge_ms\": {ms:.1}, \
                 \"replay_byte_identical\": true}}",
                converged.iterations
            );
        }
    }
    println!("{{");
    println!("  \"bench\": \"strategy_converge\",");
    println!("  \"unit\": \"ms (median of 3)\",");
    println!(
        "  \"note\": \"one row per strategic scenario x marketplace scale; iterations is \
         the fixed-point count under default ConvergeOptions; replay_byte_identical \
         asserts the converged trace round-trips the .fcb codec byte-for-byte and \
         replays to a bit-identical audit report\","
    );
    println!("  \"tolerance\": {},", opts.tolerance);
    println!("  \"max_iterations\": {},", opts.max_iterations);
    println!("  \"gain\": {},", opts.gain);
    println!("  \"cells\": [");
    println!("{rows}");
    println!("  ]");
    println!("}}");
}
