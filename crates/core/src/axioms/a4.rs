//! Axiom 4 — requester fairness in task completion.
//!
//! *"Requesters must be able to detect workers behaving maliciously during
//! task completion."*
//!
//! This axiom is about platform **capability**: did the platform run any
//! detection at all, and did it work? The checker reads the
//! `WorkerFlagged` audit events (did detection run, whom did it flag) and
//! — because effectiveness cannot be judged without knowing who actually
//! misbehaved — scores the flags against the trace's evaluation-only
//! ground truth by F1. A platform with no detection events while
//! malicious workers were active scores 0: its requesters had no means to
//! defend themselves (the Vuurens 40%-spam scenario of §2.1).

use crate::axiom::{Axiom, AxiomId, AxiomReport, ViolationCollector};
use crate::index::TraceIndex;
use faircrowd_model::ids::WorkerId;
use faircrowd_model::similarity::SimilarityConfig;
use std::collections::BTreeSet;

/// Checker for Axiom 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaliceDetection;

impl Axiom for MaliceDetection {
    fn id(&self) -> AxiomId {
        AxiomId::A4MaliceDetection
    }

    fn check(
        &self,
        ix: &TraceIndex<'_>,
        _cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        let trace = ix.trace();
        let flagged = ix.flagged();
        let malicious = &trace.ground_truth.malicious_workers;
        // Only workers who actually submitted can be detected or need to be.
        let active = ix.submitters();
        let active_malicious: BTreeSet<WorkerId> =
            malicious.intersection(&active).copied().collect();

        if active_malicious.is_empty() {
            let mut report =
                AxiomReport::vacuous(self.id(), "no active malicious workers in the trace");
            if !flagged.is_empty() {
                report.notes.push(format!(
                    "{} worker(s) flagged despite a clean workforce (false alarms)",
                    flagged.len()
                ));
                report.score = 1.0 - flagged.len() as f64 / active.len().max(1) as f64;
            }
            return report;
        }

        let mut collector = ViolationCollector::new(self.id(), max_witnesses);
        if flagged.is_empty() {
            collector.push(
                1.0,
                format!(
                    "platform emitted no detection events while {} malicious worker(s) \
                     were active",
                    active_malicious.len()
                ),
            );
            return AxiomReport {
                axiom: self.id(),
                score: 0.0,
                checked: active.len(),
                violation_count: collector.total,
                truncated: false,
                violations: collector.items,
                notes: vec!["requesters had no means of detection".to_owned()],
            };
        }

        let tp = flagged.intersection(&active_malicious).count();
        let fp = flagged.difference(malicious).count();
        let fn_ = active_malicious.difference(flagged).count();
        let precision = if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            1.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };

        for w in active_malicious.difference(flagged) {
            collector.push(0.8, format!("malicious worker {w} was never flagged"));
        }
        for w in flagged.difference(malicious) {
            collector.push(0.4, format!("honest worker {w} was wrongly flagged"));
        }

        AxiomReport {
            axiom: self.id(),
            score: f1,
            checked: active.len(),
            violation_count: collector.total,
            truncated: collector.truncated(),
            violations: collector.items,
            notes: vec![format!(
                "detection precision {precision:.2}, recall {recall:.2} over {} active \
                 malicious of {} active workers",
                active_malicious.len(),
                active.len()
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axioms::fixtures::*;
    use faircrowd_model::contribution::Contribution;
    use faircrowd_model::event::EventKind;
    use faircrowd_model::time::SimTime;
    use faircrowd_model::trace::Trace;

    fn cfg() -> SimilarityConfig {
        SimilarityConfig::default()
    }

    fn flag(trace: &mut Trace, at: u64, worker_id: u32, score: f64) {
        trace.events.push(
            SimTime::from_secs(at),
            EventKind::WorkerFlagged {
                worker: w(worker_id),
                score,
                detector: "test".into(),
            },
        );
    }

    /// Trace with workers 0..4 submitting; 2 and 3 malicious.
    fn spam_trace() -> Trace {
        let mut trace = skeleton(vec![task(0, 0, &[0, 0], 10)]);
        trace.workers = (0..4).map(|i| worker(i, &[1, 1])).collect();
        for i in 0..4 {
            submit(&mut trace, 100 + i as u64, 0, i, Contribution::Label(0));
        }
        trace.ground_truth.malicious_workers = [w(2), w(3)].into_iter().collect();
        trace
    }

    #[test]
    fn perfect_detection_scores_one() {
        let mut trace = spam_trace();
        flag(&mut trace, 200, 2, 0.9);
        flag(&mut trace, 200, 3, 0.8);
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        assert!((r.score - 1.0).abs() < 1e-12);
        assert!(r.holds());
    }

    #[test]
    fn no_detection_capability_scores_zero() {
        let trace = spam_trace();
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.score, 0.0);
        assert_eq!(r.violation_count, 1);
        assert!(r.violations[0].description.contains("no detection events"));
    }

    #[test]
    fn missed_and_false_flags_lower_the_score() {
        let mut trace = spam_trace();
        flag(&mut trace, 200, 2, 0.9); // true positive
        flag(&mut trace, 200, 0, 0.7); // false positive
                                       // w3 missed
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        // precision 1/2, recall 1/2 -> F1 = 1/2
        assert!((r.score - 0.5).abs() < 1e-9);
        assert_eq!(r.violation_count, 2);
    }

    #[test]
    fn clean_workforce_is_vacuous() {
        let mut trace = spam_trace();
        trace.ground_truth.malicious_workers.clear();
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        assert_eq!(r.score, 1.0);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn false_alarms_on_clean_workforce_penalised() {
        let mut trace = spam_trace();
        trace.ground_truth.malicious_workers.clear();
        flag(&mut trace, 200, 0, 0.9);
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        assert!(r.score < 1.0);
        assert!(r.notes.iter().any(|n| n.contains("false alarms")));
    }

    #[test]
    fn inactive_malicious_workers_dont_count() {
        let mut trace = spam_trace();
        // w9 is malicious but never submitted anything
        trace.workers.push(worker(9, &[1, 1]));
        trace.ground_truth.malicious_workers.insert(w(9));
        flag(&mut trace, 200, 2, 0.9);
        flag(&mut trace, 200, 3, 0.8);
        let r = MaliceDetection.check_trace(&trace, &cfg(), 10);
        assert!(
            (r.score - 1.0).abs() < 1e-12,
            "only active spammers need detecting: {}",
            r.score
        );
    }
}
