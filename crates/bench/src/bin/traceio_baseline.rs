//! Writes the trace-I/O and sweep-cache perf baseline (`BENCH_traceio.json`).
//!
//! Two workloads the trace persistence PR opened, timed through the
//! release binary and checked into the repo root so the perf trajectory
//! is tracked in review:
//!
//! 1. **Export/load throughput** — encode and decode+validate the
//!    `baseline` catalog trace at scale 1 / 4 in all three formats
//!    (whole-file JSON, line-oriented JSONL and the binary `.fcb`
//!    form), reported in events/s and MB/s. Acceptance: decoding the
//!    *same trace* from binary must be ≥5× faster than from JSON at
//!    scale 4 (equivalently, ≥5× the JSON row in decode events/s —
//!    MB/s-of-own-bytes would reward verbosity, since the `.fcb` file
//!    is ~14× smaller than the JSON one).
//! 2. **Cached vs uncached sweeps** — a grid with a stacked `enforce`
//!    axis run through `faircrowd::sweep` with the baseline-simulation
//!    cache on and off. Cells differing only on the enforcement stack
//!    share one simulated trace (so the cached sweep does (stacks − 1)
//!    fewer baseline simulations per cell), and the cached path also
//!    skips the baseline audit of enforced cells, whose report the
//!    sweep never reads. Outputs are asserted byte-identical before any
//!    number is reported.
//!
//! ```text
//! cargo run --release --bin traceio_baseline > BENCH_traceio.json
//! ```
//!
//! Timings are medians over repeated runs on whatever machine executes
//! this; the hardware-stable numbers are the *ratios*.

use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::sweep::{self, SweepGrid};
use faircrowd::Pipeline;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let mut io_rows = String::new();
    // Pure decode wall-clock per (scale index, format index) for the
    // acceptance ratio asserted below — same trace, so the ratio is
    // exactly the events/s ratio.
    let mut pure_decode_ms = [[0.0f64; 3]; 2];
    for (i, scale) in [1.0f64, 4.0].into_iter().enumerate() {
        let pipeline = Pipeline::new()
            .scenario_name("baseline")
            .expect("baseline is in the catalog")
            .configure(|c| *c = c.at_scale(scale));
        let trace = pipeline.simulate().expect("baseline simulates");
        let events = trace.events.len();

        for (j, format) in [TraceFormat::Json, TraceFormat::Jsonl, TraceFormat::Binary]
            .into_iter()
            .enumerate()
        {
            let encoded = persist::encode_bytes(&trace, format);
            // The roundtrip must be exact before throughput means anything.
            let back = persist::decode_bytes(&encoded).expect("decode");
            assert_eq!(back, trace, "lossy codec at scale {scale}");
            back.ensure_valid().expect("decoded trace validates");

            let bytes = encoded.len();
            let runs = if scale > 1.0 { 7 } else { 11 };
            let encode_ms = median_ms(runs, || {
                black_box(persist::encode_bytes(black_box(&trace), format));
            });
            let decode_ms = median_ms(runs, || {
                let t = persist::decode_bytes(black_box(&encoded)).expect("decode");
                t.ensure_valid().expect("validate");
                black_box(t);
            });
            // Codec-only time, without the format-independent
            // referential-integrity pass, for the acceptance ratio.
            let decoded_ms = median_ms(runs, || {
                black_box(persist::decode_bytes(black_box(&encoded)).expect("decode"));
            });
            pure_decode_ms[i][j] = decoded_ms;
            let label = match format {
                TraceFormat::Json => "json",
                TraceFormat::Jsonl => "jsonl",
                TraceFormat::Binary => "binary",
            };
            if i > 0 || j > 0 {
                io_rows.push_str(",\n");
            }
            let mb = bytes as f64 / 1e6;
            let _ = write!(
                io_rows,
                "    {{\"scale\": {scale}, \"format\": \"{label}\", \"events\": {events}, \
                 \"bytes\": {bytes}, \"encode_ms\": {encode_ms:.3}, \"decode_ms\": {decode_ms:.3}, \
                 \"pure_decode_ms\": {decoded_ms:.3}, \
                 \"encode_mb_s\": {:.1}, \"decode_mb_s\": {:.1}, \
                 \"encode_events_s\": {:.0}, \"decode_events_s\": {:.0}}}",
                mb / (encode_ms / 1e3),
                mb / (decode_ms / 1e3),
                events as f64 / (encode_ms / 1e3),
                events as f64 / (decode_ms / 1e3),
            );
        }
    }

    // Acceptance floor for the binary format: at the larger scale,
    // decoding the same trace from `.fcb` must be ≥5× faster than from
    // JSON — a wall-clock (hence events/s) ratio, the measure a dense
    // format can honestly win on. A ratio of decode_mb_s values would be
    // nonsense here: the binary file is ~14× smaller, so every one of
    // its bytes carries ~14× more trace and MB/s-of-own-bytes punishes
    // exactly the density the format exists for.
    let binary_vs_json_decode = pure_decode_ms[1][0] / pure_decode_ms[1][2];
    assert!(
        binary_vs_json_decode >= 5.0,
        "binary decode must beat JSON decode by >=5x on the same trace at scale 4, \
         got {binary_vs_json_decode:.2}"
    );

    // Sweep: 2 seeds × 4 enforcement stacks over the baseline scenario
    // at scale 4. Uncached: 8 baseline simulations (+6 enforced
    // re-simulations, which repair the config and *must* re-run) and 14
    // audits. Cached: 2 baseline simulations (+6) and 8 audits — cells
    // differing only on the stack share one baseline trace, and
    // enforced cells skip the baseline audit nobody reads.
    let grid = SweepGrid::parse(
        "scenario=baseline;seed=0..2;scale=4;enforce=none,transparency,grace,transparency+grace",
    )
    .expect("grid parses");
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let cached_result = sweep::run_grid_opts(&grid, jobs, true).expect("cached sweep");
    let uncached_result = sweep::run_grid_opts(&grid, jobs, false).expect("uncached sweep");
    assert_eq!(
        cached_result.to_json(),
        uncached_result.to_json(),
        "cache must not change sweep output"
    );

    let sweep_runs = 5;
    let cached_ms = median_ms(sweep_runs, || {
        black_box(sweep::run_grid_opts(black_box(&grid), jobs, true).expect("sweep"));
    });
    let uncached_ms = median_ms(sweep_runs, || {
        black_box(sweep::run_grid_opts(black_box(&grid), jobs, false).expect("sweep"));
    });

    println!("{{");
    println!("  \"bench\": \"traceio_baseline\",");
    println!("  \"trace_io\": [");
    println!("{io_rows}");
    println!("  ],");
    println!(
        "  \"binary_vs_json_decode_speedup\": {binary_vs_json_decode:.2}, \
         \"binary_floor\": 5.0,"
    );
    println!("  \"sweep_cache\": {{");
    println!(
        "    \"grid\": \"scenario=baseline;seed=0..2;scale=4;\
         enforce=none,transparency,grace,transparency+grace\", \
         \"cases\": {}, \"jobs\": {jobs},",
        cached_result.cases.len()
    );
    println!(
        "    \"uncached_ms\": {uncached_ms:.1}, \"cached_ms\": {cached_ms:.1}, \
         \"speedup\": {:.2},",
        uncached_ms / cached_ms
    );
    println!("    \"outputs_byte_identical\": true");
    println!("  }}");
    println!("}}");
}
