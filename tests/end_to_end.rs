//! End-to-end integration: scenario → simulate → audit → report through
//! the `Pipeline`, across the crate boundaries, with determinism and
//! well-formedness guarantees.

use faircrowd::prelude::*;

fn demo_config(seed: u64) -> ScenarioConfig {
    // Full participation keeps the market controlled: exposure
    // differences then reflect platform behaviour, not who happened to
    // be online (workers offline while a task fills create benign
    // Axiom-1/2 noise that would make "healthy market" assertions flaky).
    let full_time = |mut p: WorkerPopulation| {
        p.participation = 1.0;
        p
    };
    ScenarioConfig {
        seed,
        rounds: 36,
        workers: vec![full_time(WorkerPopulation::diligent(18))],
        campaigns: vec![
            CampaignSpec::labeling("acme", 25, 10),
            CampaignSpec::labeling("globex", 25, 11),
        ],
        ..Default::default()
    }
}

fn run_pipeline(seed: u64) -> faircrowd::PipelineResult {
    Pipeline::new()
        .scenario(demo_config(seed))
        .run()
        .expect("demo scenario runs")
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let r1 = run_pipeline(5);
    let r2 = run_pipeline(5);
    assert_eq!(
        r1.baseline.trace, r2.baseline.trace,
        "same seed, same trace"
    );
    assert_eq!(
        r1.baseline.report, r2.baseline.report,
        "same trace, same report"
    );

    let r3 = run_pipeline(6);
    assert_ne!(
        r1.baseline.trace, r3.baseline.trace,
        "different seed, different trace"
    );
}

#[test]
fn traces_are_well_formed_and_internally_consistent() {
    let result = run_pipeline(9);
    let trace = result.trace();
    // run() already called ensure_valid(); check the raw invariants too.
    assert!(trace.validate().is_empty(), "{:?}", trace.validate());
    assert!(trace.events.check_integrity().is_ok());

    // Every payment event refers to an approved or auto-approved
    // submission of the right worker.
    let payments = trace.payment_by_submission();
    for (sid, amount) in payments {
        let sub = trace.submission(sid).expect("payment for known submission");
        assert!(amount.is_positive());
        let task = trace.task(sub.task).expect("known task");
        assert!(
            amount <= task.reward,
            "single-submission payment cannot exceed the advertised reward"
        );
    }

    // Earnings aggregate consistently.
    let earnings = trace.earnings_by_worker();
    let total: faircrowd::model::Credits = earnings.values().copied().sum();
    assert_eq!(
        total,
        faircrowd::core::metrics::total_payout(&faircrowd::core::TraceIndex::new(trace))
    );
}

#[test]
fn healthy_market_passes_the_full_audit() {
    let result = run_pipeline(21);
    let report = result.report();
    assert_eq!(report.axioms.len(), 7);
    for axiom in &report.axioms {
        assert!(
            axiom.score > 0.9,
            "{} unexpectedly low: {:.3} ({:?})",
            axiom.axiom,
            axiom.score,
            axiom.notes
        );
    }
    // The rendered result carries both the market summary and the report.
    let text = result.render();
    assert!(text.contains("market"));
    assert!(text.contains("overall"));
}

#[test]
fn summary_statistics_are_consistent_with_the_audit() {
    let result = run_pipeline(33);
    let summary = &result.baseline.summary;
    let trace = &result.baseline.trace;
    let ix = faircrowd::core::TraceIndex::new(trace);
    assert_eq!(summary.retention, faircrowd::core::metrics::retention(&ix));
    assert_eq!(
        summary.total_paid,
        faircrowd::core::metrics::total_payout(&ix)
    );
    assert!(summary.submissions > 0);
    assert!((0.0..=1.0).contains(&summary.label_quality));
}

#[test]
fn audit_scores_are_always_in_unit_range() {
    for seed in 0..5 {
        let report = run_pipeline(seed).baseline.report;
        for axiom in &report.axioms {
            assert!(
                (0.0..=1.0).contains(&axiom.score),
                "{}: {}",
                axiom.axiom,
                axiom.score
            );
            for v in &axiom.violations {
                assert!((0.0..=1.0).contains(&v.severity));
                assert!(!v.description.is_empty());
            }
        }
    }
}
