//! Plain-text rendering of audit reports and experiment tables.
//!
//! The [`TextTable`] here is the shared renderer for every experiment in
//! `faircrowd-bench` and for [`render_report`], which turns a
//! [`FairnessReport`] into the human-readable audit summary shown by the
//! examples.

use crate::audit::FairnessReport;
use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with headers; all columns left-aligned by default.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        TextTable {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set column alignments (right-align numeric columns).
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns;
        self
    }

    /// Convenience: first column left, the rest right.
    pub fn numeric(mut self) -> Self {
        for (i, a) in self.aligns.iter_mut().enumerate() {
            *a = if i == 0 { Align::Left } else { Align::Right };
        }
        self
    }

    /// Append a row (must match header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with a header rule.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<width$}", width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>width$}", width = widths[i]);
                    }
                }
            }
            // trim trailing spaces
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Render a fairness report as a human-readable audit summary.
pub fn render_report(report: &FairnessReport) -> String {
    let mut table =
        TextTable::new(["axiom", "score", "checked", "violations", "notes"]).aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Left,
        ]);
    for r in &report.axioms {
        table.row([
            r.axiom.label().to_owned(),
            format!("{:.3}", r.score),
            r.checked.to_string(),
            r.violation_count.to_string(),
            r.notes.first().cloned().unwrap_or_default(),
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\noverall {:.3}  (fairness {:.3}, transparency {:.3}); {} violation(s) total",
        report.overall_score(),
        report.fairness_score(),
        report.transparency_score(),
        report.total_violations()
    );
    // Show a few witnesses for colour.
    let witnesses: Vec<&crate::axiom::Violation> = report
        .axioms
        .iter()
        .flat_map(|r| r.violations.iter())
        .take(5)
        .collect();
    if !witnesses.is_empty() {
        let _ = writeln!(out, "example violations:");
        for v in witnesses {
            let _ = writeln!(out, "  [{}] {}", v.axiom.label(), v.description);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditEngine;
    use faircrowd_model::trace::Trace;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["name", "value"]).numeric();
        t.row(["alpha", "1.00"]);
        t.row(["a-much-longer-name", "12.50"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // right-aligned numbers end at the same column
        assert!(lines[2].ends_with("1.00"));
        assert!(lines[3].ends_with("12.50"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_is_header_and_rule() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn report_rendering_mentions_every_axiom() {
        let report = AuditEngine::with_defaults().run(&Trace::default());
        let text = render_report(&report);
        for id in crate::axiom::AxiomId::ALL {
            assert!(text.contains(id.label()), "missing {id}");
        }
        assert!(text.contains("overall"));
    }
}
