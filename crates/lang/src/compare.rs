//! Cross-platform policy comparison.
//!
//! "The declarative nature of those rules will allow easy comparison
//! across platforms" (§3.3.2). Two policies compare by their effective
//! grant sets; the result lists what each platform discloses that the
//! other does not, plus the axiom-coverage deltas used by E5.

use crate::sema::CompiledPolicy;
use faircrowd_model::disclosure::{Audience, DisclosureItem};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One effective grant: a viewer can see an item.
pub type Grant = (DisclosureItem, Audience);

/// The comparison of two policies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyComparison {
    /// Name of the first policy.
    pub left_name: String,
    /// Name of the second policy.
    pub right_name: String,
    /// Grants only the first policy makes.
    pub only_left: Vec<Grant>,
    /// Grants only the second policy makes.
    pub only_right: Vec<Grant>,
    /// Grants both make.
    pub shared: Vec<Grant>,
    /// Axiom-6 coverage of (left, right).
    pub axiom6: (f64, f64),
    /// Axiom-7 coverage of (left, right).
    pub axiom7: (f64, f64),
}

/// Effective grants of a policy: for every (item, audience) pair, whether
/// the audience can see the item (this normalises `public` grants into
/// per-audience visibility so textually different policies compare by
/// meaning, not syntax).
fn effective_grants(policy: &CompiledPolicy) -> Vec<Grant> {
    let set = policy.disclosure_set();
    let mut grants = Vec::new();
    for item in DisclosureItem::ALL {
        for audience in Audience::ALL {
            if set.allows(item, audience) {
                grants.push((item, audience));
            }
        }
    }
    grants
}

/// Compare two compiled policies.
pub fn compare(left: &CompiledPolicy, right: &CompiledPolicy) -> PolicyComparison {
    let lg: std::collections::BTreeSet<Grant> = effective_grants(left).into_iter().collect();
    let rg: std::collections::BTreeSet<Grant> = effective_grants(right).into_iter().collect();
    let ls = left.disclosure_set();
    let rs = right.disclosure_set();
    PolicyComparison {
        left_name: left.name.clone(),
        right_name: right.name.clone(),
        only_left: lg.difference(&rg).copied().collect(),
        only_right: rg.difference(&lg).copied().collect(),
        shared: lg.intersection(&rg).copied().collect(),
        axiom6: (ls.axiom6_coverage(), rs.axiom6_coverage()),
        axiom7: (ls.axiom7_coverage(), rs.axiom7_coverage()),
    }
}

impl PolicyComparison {
    /// Jaccard similarity of the two grant sets.
    pub fn grant_similarity(&self) -> f64 {
        let union = self.only_left.len() + self.only_right.len() + self.shared.len();
        if union == 0 {
            return 1.0;
        }
        self.shared.len() as f64 / union as f64
    }

    /// Render as readable text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "comparing \"{}\" vs \"{}\" (grant similarity {:.2})",
            self.left_name,
            self.right_name,
            self.grant_similarity()
        );
        let _ = writeln!(
            out,
            "  axiom-6 coverage: {:.2} vs {:.2}; axiom-7 coverage: {:.2} vs {:.2}",
            self.axiom6.0, self.axiom6.1, self.axiom7.0, self.axiom7.1
        );
        let fmt_grants = |grants: &[Grant]| -> String {
            let mut names: Vec<String> = grants
                .iter()
                .map(|(i, a)| format!("{} → {}", i.name(), a.name()))
                .collect();
            names.dedup();
            names.join(", ")
        };
        if !self.only_left.is_empty() {
            let _ = writeln!(
                out,
                "  only \"{}\": {}",
                self.left_name,
                fmt_grants(&self.only_left)
            );
        }
        if !self.only_right.is_empty() {
            let _ = writeln!(
                out,
                "  only \"{}\": {}",
                self.right_name,
                fmt_grants(&self.only_right)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_one;

    fn policy(name: &str, body: &str) -> CompiledPolicy {
        compile_one(&format!(r#"policy "{name}" {{ {body} }}"#)).unwrap()
    }

    #[test]
    fn identical_policies_are_fully_similar() {
        let a = policy("a", "disclose task.rating to public;");
        let b = policy("b", "disclose task.rating to public;");
        let cmp = compare(&a, &b);
        assert!(cmp.only_left.is_empty());
        assert!(cmp.only_right.is_empty());
        assert!((cmp.grant_similarity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extra_grants_show_up_one_sided() {
        let a = policy(
            "rich",
            "disclose task.rating to public; disclose worker.earnings to subject;",
        );
        let b = policy("poor", "disclose task.rating to public;");
        let cmp = compare(&a, &b);
        assert!(!cmp.only_left.is_empty());
        assert!(cmp.only_right.is_empty());
        assert!(cmp.grant_similarity() < 1.0);
        let text = cmp.render();
        assert!(text.contains("only \"rich\""));
        assert!(text.contains("worker.earnings"));
    }

    #[test]
    fn public_grant_subsumes_role_grant_semantically() {
        // a grants to public; b grants the same item to workers only.
        // Shared: worker-visibility; only_left: the other audiences.
        let a = policy("a", "disclose requester.rating to public;");
        let b = policy("b", "disclose requester.rating to workers;");
        let cmp = compare(&a, &b);
        assert!(cmp
            .shared
            .contains(&(DisclosureItem::RequesterRating, Audience::Workers)));
        assert!(cmp
            .only_left
            .contains(&(DisclosureItem::RequesterRating, Audience::Public)));
        assert!(cmp.only_right.is_empty());
    }

    #[test]
    fn coverage_deltas_reported() {
        let a = policy(
            "transparent",
            "disclose requester.hourly_wage to workers;
             disclose requester.payment_delay to workers;
             disclose requester.recruitment_criteria to workers;
             disclose requester.rejection_criteria to workers;
             disclose requester.evaluation_scheme to workers;",
        );
        let b = policy("opaque", "disclose task.rating to public;");
        let cmp = compare(&a, &b);
        assert!((cmp.axiom6.0 - 1.0).abs() < 1e-12);
        assert_eq!(cmp.axiom6.1, 0.0);
    }

    #[test]
    fn empty_policies_compare_as_identical() {
        let a = CompiledPolicy {
            name: "x".into(),
            rules: vec![],
            requirements: vec![],
        };
        let cmp = compare(&a, &a.clone());
        assert_eq!(cmp.grant_similarity(), 1.0);
    }
}
