//! Differential codec harness for the binary `.fcb` trace format.
//!
//! The binary format earns its place only if it is *indistinguishable*
//! from the JSON formats at every observable boundary: same decoded
//! trace, same audit report, same rendered text, same wages. Pinned
//! three ways:
//!
//! * deterministically, for **every catalog scenario**: a trace saved
//!   as `.fcb`, loaded and replayed produces reports bit-identical to
//!   the JSON and JSONL replays of the same trace;
//! * property-based, over adversarial random traces exercising every
//!   event kind and contribution type the schema encodes — decode ∘
//!   encode is the identity, and re-encoding is byte-stable;
//! * structurally: the binary form is substantially denser than JSON
//!   (the whole point), and `persist` format selection routes `.fcb`
//!   by extension and by content sniffing.

use faircrowd::core::persist::{self, TraceFormat};
use faircrowd::core::report::render_report;
use faircrowd::model::trace_bin;
use faircrowd::prelude::*;
use proptest::prelude::*;

mod common;
use common::random_trace;

#[test]
fn every_catalog_scenario_replays_bit_identically_from_binary() {
    for name in faircrowd::sim::catalog::NAMES {
        let pipeline = Pipeline::new()
            .scenario_name(name)
            .expect("catalog name resolves")
            .configure(|c| c.rounds = c.rounds.min(12));
        let trace = pipeline.simulate().expect("catalog scenario simulates");

        // The JSON and JSONL replays are the reference points the
        // binary replay must be indistinguishable from.
        let json_replay = {
            let text = persist::encode(&trace, TraceFormat::Json);
            pipeline
                .replay(&persist::decode(&text).expect("json decode"))
                .expect("json replay")
        };
        let jsonl_replay = {
            let text = persist::encode(&trace, TraceFormat::Jsonl);
            pipeline
                .replay(&persist::decode(&text).expect("jsonl decode"))
                .expect("jsonl replay")
        };

        let path = std::env::temp_dir().join(format!("fc_bin_replay_{name}.fcb"));
        persist::save(&trace, &path).expect("save .fcb");
        let loaded = persist::load(&path).expect("load .fcb");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded, trace, "{name}: binary trace round-trip");
        let replayed = pipeline.replay(&loaded).expect("binary replay");
        for (reference, other) in [(&json_replay, "json"), (&jsonl_replay, "jsonl")] {
            assert_eq!(
                replayed.report, reference.report,
                "{name}: binary replay report must be bit-identical to the {other} replay"
            );
            assert_eq!(
                render_report(&replayed.report),
                render_report(&reference.report),
                "{name}: rendered text must be byte-identical to the {other} replay"
            );
            assert_eq!(replayed.summary, reference.summary, "{name} vs {other}");
            assert_eq!(replayed.wages, reference.wages, "{name} vs {other}");
        }
    }
}

#[test]
fn binary_form_is_denser_than_json_and_sniffable() {
    let trace = Pipeline::new().rounds(12).simulate().expect("simulate");
    let json = persist::encode(&trace, TraceFormat::Json);
    let bytes = persist::encode_bytes(&trace, TraceFormat::Binary);
    assert!(
        bytes.len() * 4 < json.len(),
        "binary must be at least 4x denser: {} vs {} bytes",
        bytes.len(),
        json.len()
    );
    // Content sniffing routes the bytes regardless of any extension.
    assert!(trace_bin::sniff_binary(&bytes));
    assert!(!trace_bin::sniff_binary(json.as_bytes()));
    let sniffed = persist::decode_bytes(&bytes).expect("sniffed decode");
    assert_eq!(sniffed, trace);
}

#[test]
fn format_selection_picks_binary_for_fcb_extension() {
    use std::path::Path;
    assert_eq!(
        TraceFormat::for_path(Path::new("market.fcb")),
        TraceFormat::Binary
    );
    assert_eq!(
        TraceFormat::for_path(Path::new("market.jsonl")),
        TraceFormat::Jsonl
    );
    assert_eq!(
        TraceFormat::for_path(Path::new("market.json")),
        TraceFormat::Json
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any legal trace round-trips exactly through the binary codec,
    /// re-encodes byte-identically, and audits bit-identically to the
    /// original — the same contract the JSON formats are held to.
    #[test]
    fn random_traces_roundtrip_binary_and_replay_identically(
        seed in 0u64..1_000_000,
        n_workers in 0usize..30,
        n_tasks in 0usize..20,
        n_subs in 0usize..40,
    ) {
        let trace = random_trace(seed, n_workers, n_tasks, n_subs);
        prop_assert!(trace.validate().is_empty(), "generator must emit valid traces");
        let bytes = trace_bin::trace_to_bytes(&trace);
        let back = trace_bin::trace_from_bytes(&bytes);
        prop_assert!(back.is_ok(), "binary decode: {:?}", back.err());
        let back = back.unwrap();
        prop_assert_eq!(&back, &trace, "binary round-trip");
        prop_assert_eq!(trace_bin::trace_to_bytes(&back), bytes, "binary re-encode");

        let engine = AuditEngine::with_defaults();
        prop_assert_eq!(engine.run(&back), engine.run(&trace), "binary replayed audit");
    }
}
