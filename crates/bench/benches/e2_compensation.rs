//! E2 — Fairness in worker compensation.
//!
//! Paper source: §3.1.1 "In Worker Compensation" (wrongful rejection,
//! reneged bonuses, unequal pay for equal contributions), §2.1
//! (quality-based reward schemes, Wang–Ipeirotis–Provost [21]), Axiom 3.
//!
//! The same labeling market runs under different compensation regimes.
//! Fixed-price with fair approval is the Axiom-3 anchor; noisy
//! quality-based pricing pays objectively identical contributions
//! differently; wrongful rejection leaves identical work unpaid; a
//! reneging requester shows up in retention, not in Axiom 3 — exactly the
//! distinction the axioms are designed to draw.

use faircrowd_bench::{banner, f2, f3, mean, run_seeds, TextTable};
use faircrowd_core::{metrics, AuditEngine, AxiomId, TraceIndex};
use faircrowd_model::disclosure::DisclosureSet;
use faircrowd_model::money::Credits;
use faircrowd_pay::scheme::BonusPolicy;
use faircrowd_quality::spam::WorkerArchetype;
use faircrowd_sim::{
    ApprovalPolicy, CampaignSpec, PaymentSchemeChoice, PolicyChoice, ScenarioConfig,
    WorkerPopulation,
};

struct Regime {
    label: &'static str,
    payment: PaymentSchemeChoice,
    approval: ApprovalPolicy,
    bonus: Option<BonusPolicy>,
}

fn base(seed: u64, regime: &Regime) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        rounds: 48,
        n_skills: 0,
        workers: vec![
            WorkerPopulation::diligent(30),
            WorkerPopulation::of(WorkerArchetype::Sloppy, 6),
        ],
        campaigns: vec![CampaignSpec {
            assignments_per_task: 4,
            bonus: regime.bonus,
            ..CampaignSpec::labeling("acme", 80, 10)
        }],
        policy: PolicyChoice::SelfSelection,
        disclosure: DisclosureSet::fully_transparent(),
        approval: regime.approval,
        payment: regime.payment,
        ..Default::default()
    }
}

fn main() {
    banner(
        "E2",
        "compensation schemes vs Axiom 3",
        "paper §3.1.1 worker compensation, §2.1 [21]; Axiom 3",
    );

    let fair_approval = ApprovalPolicy::QualityThreshold {
        threshold: 0.5,
        noise: 0.1,
        give_feedback: true,
    };
    let regimes = vec![
        Regime {
            label: "fixed + fair approval",
            payment: PaymentSchemeChoice::Fixed,
            approval: fair_approval,
            bonus: None,
        },
        Regime {
            label: "fixed + wrongful rejection (p=.3, no feedback)",
            payment: PaymentSchemeChoice::Fixed,
            approval: ApprovalPolicy::RandomReject {
                reject_prob: 0.3,
                give_feedback: false,
            },
            bonus: None,
        },
        Regime {
            label: "quality-based saturating (.5/.9) + fair approval",
            payment: PaymentSchemeChoice::QualityBased {
                floor: 0.5,
                full_quality: 0.9,
            },
            approval: fair_approval,
            bonus: None,
        },
        Regime {
            label: "quality-based ramp (.5/1.0) + fair approval",
            payment: PaymentSchemeChoice::QualityBased {
                floor: 0.5,
                full_quality: 1.0,
            },
            approval: fair_approval,
            bonus: None,
        },
        Regime {
            label: "quality-based strict (.8/1.0) + fair approval",
            payment: PaymentSchemeChoice::QualityBased {
                floor: 0.8,
                full_quality: 1.0,
            },
            approval: fair_approval,
            bonus: None,
        },
        Regime {
            label: "fixed + honoured bonus",
            payment: PaymentSchemeChoice::Fixed,
            approval: fair_approval,
            bonus: Some(BonusPolicy {
                amount: Credits::from_cents(5),
                quality_threshold: 0.9,
                honoured: true,
            }),
        },
        Regime {
            label: "fixed + RENEGED bonus",
            payment: PaymentSchemeChoice::Fixed,
            approval: fair_approval,
            bonus: Some(BonusPolicy {
                amount: Credits::from_cents(5),
                quality_threshold: 0.9,
                honoured: false,
            }),
        },
    ];

    let engine = AuditEngine::with_defaults();
    let mut table = TextTable::new([
        "regime",
        "A3",
        "wage-gini",
        "hourly/$",
        "cost/$",
        "retention",
    ])
    .numeric();

    for regime in &regimes {
        let traces = run_seeds(|seed| base(seed, regime));
        let indexes: Vec<TraceIndex> = traces.iter().map(TraceIndex::new).collect();
        let a3 = mean(indexes.iter().map(|ix| {
            engine
                .run_indexed(ix, &[AxiomId::A3Compensation])
                .score_of(AxiomId::A3Compensation)
        }));
        // Runs where nobody invested time have no wage distribution and
        // are skipped rather than folded in as "perfectly fair".
        let wages: Vec<_> = indexes.iter().filter_map(metrics::wage_stats).collect();
        let gini = mean(wages.iter().map(|w| w.gini));
        let hourly = mean(wages.iter().map(|w| w.mean));
        let cost = mean(
            indexes
                .iter()
                .map(|ix| metrics::total_payout(ix).as_dollars_f64()),
        );
        let retention = mean(indexes.iter().map(metrics::retention));
        table.row([
            regime.label.to_owned(),
            f3(a3),
            f3(gini),
            f2(hourly),
            f2(cost),
            f3(retention),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nreading: fixed-price is the Axiom-3 anchor. The saturating \
         quality scheme (.5/.9) is de-facto fixed-price for approved work \
         (every accepted label clears the full-pay knee) and stays fair; \
         non-saturating ramps pay noisy estimates of identical work \
         differently and A3 collapses. Wrongful rejection leaves identical \
         contributions unpaid (A3 and retention both drop). Bonus reneging \
         is invisible to A3 but devastates retention — the harm the \
         compensation axiom alone cannot see."
    );
}
