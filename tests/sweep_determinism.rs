//! Sweep determinism and catalog round-trip guarantees.
//!
//! The sweep engine promises that its aggregate exports are a pure
//! function of the grid — the worker-thread count must never leak into
//! the output. These tests pin that promise byte-for-byte, and check
//! that every named scenario in the catalog parses, validates and runs
//! end to end.

use faircrowd::prelude::*;
use faircrowd::sim::catalog;
use faircrowd::sweep::run_grid;

/// The acceptance grid, shrunk in rounds so the full matrix (every
/// registry policy × 8 seeds × 2 scenarios) stays fast in CI.
const GRID: &str = "policy=*;seed=0..8;scenario=baseline,spam_campaign;rounds=8";

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let grid = SweepGrid::parse(GRID).unwrap();
    let serial = run_grid(&grid, 1).unwrap();
    let parallel = run_grid(&grid, 8).unwrap();
    assert_eq!(
        serial.cases.len(),
        faircrowd::assign::registry::NAMES.len() * 8 * 2
    );
    assert_eq!(serial.cases.len(), parallel.cases.len());
    assert_eq!(serial.groups.len(), parallel.groups.len());
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "JSON must not depend on --jobs"
    );
    assert_eq!(
        serial.to_csv(),
        parallel.to_csv(),
        "CSV must not depend on --jobs"
    );
    assert_eq!(serial.render_table(), parallel.render_table());
}

#[test]
fn sweep_aggregates_do_not_depend_on_seed_axis_order() {
    let forward = run_grid(
        &SweepGrid::parse("policy=round_robin;seed=1,2,3;rounds=8").unwrap(),
        2,
    )
    .unwrap();
    let backward = run_grid(
        &SweepGrid::parse("policy=round_robin;seed=3,1,2;rounds=8").unwrap(),
        2,
    )
    .unwrap();
    // Same multiset of seeds → identical aggregate exports (cases keep
    // their own order, so only group-level output is order-free).
    assert_eq!(forward.to_csv(), backward.to_csv());
    assert_eq!(forward.groups[0].seeds, vec![1, 2, 3]);
    assert_eq!(backward.groups[0].seeds, vec![1, 2, 3]);
}

#[test]
fn every_catalog_preset_round_trips() {
    for name in catalog::NAMES {
        // Parses and validates…
        let config = catalog::get(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        config.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        // …and runs two rounds end to end through the Pipeline (late
        // surge campaigns post at round 0 so they fit the short horizon).
        let result = Pipeline::new()
            .scenario_name(name)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .configure(|c| {
                c.rounds = 2;
                for campaign in &mut c.campaigns {
                    campaign.post_round = 0;
                }
            })
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.baseline.report.axioms.len(), 7, "{name}");
        assert!(result.config.validate().is_ok(), "{name}");
    }
}

#[test]
fn catalog_and_cli_spellings_agree() {
    // Hyphens/case resolve exactly like the policy registry.
    assert_eq!(
        catalog::get("Transparent-Utopia").unwrap(),
        catalog::get("transparent_utopia").unwrap()
    );
    // Scenario configs surfaced through the sweep match direct lookup.
    let cases = SweepGrid::parse("scenario=flash_crowd")
        .unwrap()
        .expand()
        .unwrap();
    assert_eq!(cases[0].rounds, catalog::get("flash_crowd").unwrap().rounds);
}

#[test]
fn scale_axis_grows_the_market() {
    let grid = SweepGrid::parse("scenario=baseline;scale=1,2;rounds=8").unwrap();
    let result = run_grid(&grid, 2).unwrap();
    assert_eq!(result.groups.len(), 2);
    let (small, large) = (&result.cases[0], &result.cases[1]);
    assert!(
        large.summary.submissions > small.summary.submissions,
        "a 2× market should produce more submissions ({} vs {})",
        large.summary.submissions,
        small.summary.submissions
    );
}
