//! Objective fairness and transparency measures (§4.1).
//!
//! "Objective measures such as quality of worker contribution and worker
//! retention can be used in controlled experiments to quantify the level
//! of fairness and transparency of a system as well as its effectiveness."
//! These are those measures, computed from an indexed trace: build one
//! [`TraceIndex`] per trace and take every measure off it, instead of
//! re-replaying the event log once per measure.

use crate::index::TraceIndex;
use faircrowd_model::contribution::Contribution;
use faircrowd_model::ids::WorkerId;
use faircrowd_model::money::Credits;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::stats;
use faircrowd_model::time::SimDuration;
use faircrowd_pay::wage::WageStats;
use std::collections::BTreeMap;

/// Per-worker exposure counts (how many distinct tasks each worker saw).
pub fn exposure_counts(ix: &TraceIndex<'_>) -> BTreeMap<WorkerId, usize> {
    ix.visibility()
        .iter()
        .map(|(w, tasks)| (w, tasks.len()))
        .collect()
}

/// Gini coefficient of the exposure distribution — the headline
/// exposure-inequality number in E1.
pub fn exposure_gini(ix: &TraceIndex<'_>) -> f64 {
    let counts: Vec<f64> = ix.visibility().values().map(|t| t.len() as f64).collect();
    stats::gini(&counts)
}

/// Jain fairness index of exposure.
pub fn exposure_jain(ix: &TraceIndex<'_>) -> f64 {
    let counts: Vec<f64> = ix.visibility().values().map(|t| t.len() as f64).collect();
    stats::jain_index(&counts)
}

/// Mean access disparity among similar worker pairs: `1 − mean Jaccard
/// overlap` of their qualified access sets (0 = perfectly equal access).
/// Returns 0.0 when the trace has no similar pairs.
pub fn access_disparity(ix: &TraceIndex<'_>, cfg: &SimilarityConfig) -> f64 {
    let report = crate::axioms::a1::WorkerAssignmentFairness.check_for_disparity(ix, cfg);
    1.0 - report
}

/// Worker retention: `1 − quits / active workers` (1.0 with no activity).
pub fn retention(ix: &TraceIndex<'_>) -> f64 {
    let active = ix.session_workers().len();
    if active == 0 {
        1.0
    } else {
        1.0 - ix.quits().len() as f64 / active as f64
    }
}

/// Mean objective quality of label submissions against ground truth
/// (the §4.1 contribution-quality measure); `None` with no label work.
pub fn label_quality(ix: &TraceIndex<'_>) -> Option<f64> {
    let trace = ix.trace();
    let mut sum = 0.0;
    let mut n = 0usize;
    for s in &trace.submissions {
        if let Contribution::Label(l) = &s.contribution {
            if let Some(truth) = trace.ground_truth.true_labels.get(&s.task) {
                sum += f64::from(l == truth);
                n += 1;
            }
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Effective hourly-wage statistics across workers: total earnings (pay +
/// bonuses) over total invested time (submission durations plus
/// interrupted invested time). `None` when no worker invested any time —
/// an empty wage distribution has no statistics (in particular it is
/// *not* "perfectly fair"), and sweep folds skip it instead of averaging
/// in fabricated gini-0/jain-1 values.
pub fn wage_stats(ix: &TraceIndex<'_>) -> Option<WageStats> {
    let earnings = ix.earnings();
    let mut worked: BTreeMap<WorkerId, u64> = BTreeMap::new();
    for s in &ix.trace().submissions {
        *worked.entry(s.worker).or_insert(0) += s.work_duration().as_secs();
    }
    for intr in ix.interruptions() {
        *worked.entry(intr.worker).or_insert(0) += intr.invested.as_secs();
    }
    let pairs: Vec<(Credits, SimDuration)> = worked
        .into_iter()
        .map(|(w, secs)| {
            (
                earnings.get(w).copied().unwrap_or(Credits::ZERO),
                SimDuration::from_secs(secs),
            )
        })
        .collect();
    WageStats::from_earnings(&pairs)
}

/// Total amount the requesters spent (payments plus honoured bonuses).
pub fn total_payout(ix: &TraceIndex<'_>) -> Credits {
    // Earnings aggregate exactly the payment and bonus events, per worker.
    ix.earnings().values().copied().sum()
}

/// Unpaid invested time across interruptions (the worker-harm measure
/// of E4), in seconds.
pub fn unpaid_interrupted_seconds(ix: &TraceIndex<'_>) -> u64 {
    ix.interruptions()
        .iter()
        .filter(|i| !i.compensated)
        .map(|i| i.invested.as_secs())
        .sum()
}

impl crate::axioms::a1::WorkerAssignmentFairness {
    /// Mean access overlap among similar pairs (1.0 with no pairs) —
    /// shared with [`access_disparity`].
    pub(crate) fn check_for_disparity(&self, ix: &TraceIndex<'_>, cfg: &SimilarityConfig) -> f64 {
        use crate::axiom::Axiom;
        let report = self.check(ix, cfg, 0);
        if report.checked == 0 {
            1.0
        } else {
            report.score
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faircrowd_model::attributes::DeclaredAttrs;
    use faircrowd_model::event::{EventKind, QuitReason};
    use faircrowd_model::ids::{RequesterId, SubmissionId, TaskId};
    use faircrowd_model::skills::SkillVector;
    use faircrowd_model::task::TaskBuilder;
    use faircrowd_model::time::SimTime;
    use faircrowd_model::trace::Trace;
    use faircrowd_model::worker::Worker;

    fn trace_with_exposure() -> Trace {
        let mut trace = Trace::default();
        for i in 0..3 {
            trace.workers.push(Worker::new(
                WorkerId::new(i),
                DeclaredAttrs::new(),
                SkillVector::with_len(2),
            ));
        }
        for i in 0..4 {
            trace.tasks.push(
                TaskBuilder::new(
                    TaskId::new(i),
                    RequesterId::new(0),
                    SkillVector::with_len(2),
                    Credits::from_cents(10),
                )
                .build(),
            );
        }
        // w0 sees all 4, w1 sees 2, w2 sees none
        for t in 0..4u32 {
            trace.events.push(
                SimTime::from_secs(1),
                EventKind::TaskVisible {
                    task: TaskId::new(t),
                    worker: WorkerId::new(0),
                },
            );
        }
        for t in 0..2u32 {
            trace.events.push(
                SimTime::from_secs(1),
                EventKind::TaskVisible {
                    task: TaskId::new(t),
                    worker: WorkerId::new(1),
                },
            );
        }
        trace
    }

    #[test]
    fn exposure_counts_and_indices() {
        let trace = trace_with_exposure();
        let ix = TraceIndex::new(&trace);
        let counts = exposure_counts(&ix);
        assert_eq!(counts[&WorkerId::new(0)], 4);
        assert_eq!(counts[&WorkerId::new(1)], 2);
        assert_eq!(counts[&WorkerId::new(2)], 0);
        let g = exposure_gini(&ix);
        assert!(g > 0.3, "uneven exposure must show in gini: {g}");
        let j = exposure_jain(&ix);
        assert!(j < 0.8);
    }

    #[test]
    fn access_disparity_detects_exclusion() {
        let trace = trace_with_exposure();
        let d = access_disparity(&TraceIndex::new(&trace), &SimilarityConfig::default());
        assert!(d > 0.3, "identical workers, unequal access: {d}");
        // empty trace has no pairs -> no disparity
        let empty = Trace::default();
        assert_eq!(
            access_disparity(&TraceIndex::new(&empty), &SimilarityConfig::default()),
            0.0
        );
    }

    #[test]
    fn retention_counts_quits() {
        let mut trace = Trace::default();
        for i in 0..4u32 {
            trace.events.push(
                SimTime::from_secs(1),
                EventKind::SessionStarted {
                    worker: WorkerId::new(i),
                },
            );
        }
        trace.events.push(
            SimTime::from_secs(2),
            EventKind::WorkerQuit {
                worker: WorkerId::new(0),
                reason: QuitReason::Frustration,
            },
        );
        assert!((retention(&TraceIndex::new(&trace)) - 0.75).abs() < 1e-12);
        let empty = Trace::default();
        assert_eq!(retention(&TraceIndex::new(&empty)), 1.0);
    }

    #[test]
    fn label_quality_against_truth() {
        let mut trace = trace_with_exposure();
        trace.ground_truth.true_labels.insert(TaskId::new(0), 1);
        trace.ground_truth.true_labels.insert(TaskId::new(1), 0);
        trace
            .submissions
            .push(faircrowd_model::contribution::Submission {
                id: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                contribution: Contribution::Label(1),
                started_at: SimTime::ZERO,
                submitted_at: SimTime::from_secs(60),
            });
        trace
            .submissions
            .push(faircrowd_model::contribution::Submission {
                id: SubmissionId::new(1),
                task: TaskId::new(1),
                worker: WorkerId::new(1),
                contribution: Contribution::Label(1),
                started_at: SimTime::ZERO,
                submitted_at: SimTime::from_secs(60),
            });
        assert!((label_quality(&TraceIndex::new(&trace)).unwrap() - 0.5).abs() < 1e-12);
        let empty = Trace::default();
        assert!(label_quality(&TraceIndex::new(&empty)).is_none());
    }

    #[test]
    fn payout_and_unpaid_time() {
        let mut trace = trace_with_exposure();
        trace
            .submissions
            .push(faircrowd_model::contribution::Submission {
                id: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                contribution: Contribution::Label(1),
                started_at: SimTime::ZERO,
                submitted_at: SimTime::from_secs(600),
            });
        trace.events.push(
            SimTime::from_secs(700),
            EventKind::PaymentIssued {
                submission: SubmissionId::new(0),
                task: TaskId::new(0),
                worker: WorkerId::new(0),
                amount: Credits::from_cents(20),
            },
        );
        trace.events.push(
            SimTime::from_secs(800),
            EventKind::WorkInterrupted {
                task: TaskId::new(1),
                worker: WorkerId::new(1),
                invested: SimDuration::from_mins(5),
                compensated: false,
            },
        );
        let ix = TraceIndex::new(&trace);
        assert_eq!(total_payout(&ix), Credits::from_cents(20));
        assert_eq!(unpaid_interrupted_seconds(&ix), 300);
        let ws = wage_stats(&ix).expect("two workers invested time");
        // w0 earned $0.20 in 10 minutes -> $1.20/h; w1 earned 0 in 5 min
        assert_eq!(ws.n, 2);
        assert!(ws.mean > 0.0);
    }

    #[test]
    fn wage_stats_of_idle_trace_are_absent() {
        // No submissions, no interruptions — nobody invested time, so
        // there is no wage distribution to score (and certainly not a
        // "perfectly fair" one).
        let trace = trace_with_exposure();
        assert_eq!(wage_stats(&TraceIndex::new(&trace)), None);
    }
}
