//! The axiom-checker interface.
//!
//! Each of the paper's seven axioms becomes an [`Axiom`] implementation:
//! a pure function from a [`TraceIndex`] and a similarity regime to an
//! [`AxiomReport`] carrying a satisfaction score in `[0, 1]`, the size of
//! the quantifier domain it examined, and concrete violation witnesses.
//! Checkers read the trace through the shared index, so an audit derives
//! its visibility/audience/payment maps and qualification matrices once
//! instead of once per axiom.

use crate::index::TraceIndex;
use faircrowd_model::similarity::SimilarityConfig;
use faircrowd_model::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the paper's axioms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AxiomId {
    /// Axiom 1 — worker fairness in task assignment.
    A1WorkerAssignment,
    /// Axiom 2 — requester fairness in task assignment.
    A2RequesterAssignment,
    /// Axiom 3 — fairness in worker compensation.
    A3Compensation,
    /// Axiom 4 — requester fairness in task completion (malice detection).
    A4MaliceDetection,
    /// Axiom 5 — worker fairness in task completion (no interruption).
    A5NoInterruption,
    /// Axiom 6 — requester transparency.
    A6RequesterTransparency,
    /// Axiom 7 — platform transparency.
    A7PlatformTransparency,
}

impl AxiomId {
    /// All axioms in paper order.
    pub const ALL: [AxiomId; 7] = [
        AxiomId::A1WorkerAssignment,
        AxiomId::A2RequesterAssignment,
        AxiomId::A3Compensation,
        AxiomId::A4MaliceDetection,
        AxiomId::A5NoInterruption,
        AxiomId::A6RequesterTransparency,
        AxiomId::A7PlatformTransparency,
    ];

    /// The fairness axioms (1–5).
    pub const FAIRNESS: [AxiomId; 5] = [
        AxiomId::A1WorkerAssignment,
        AxiomId::A2RequesterAssignment,
        AxiomId::A3Compensation,
        AxiomId::A4MaliceDetection,
        AxiomId::A5NoInterruption,
    ];

    /// The transparency axioms (6–7).
    pub const TRANSPARENCY: [AxiomId; 2] = [
        AxiomId::A6RequesterTransparency,
        AxiomId::A7PlatformTransparency,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AxiomId::A1WorkerAssignment => "A1-worker-assignment",
            AxiomId::A2RequesterAssignment => "A2-requester-assignment",
            AxiomId::A3Compensation => "A3-compensation",
            AxiomId::A4MaliceDetection => "A4-malice-detection",
            AxiomId::A5NoInterruption => "A5-no-interruption",
            AxiomId::A6RequesterTransparency => "A6-requester-transparency",
            AxiomId::A7PlatformTransparency => "A7-platform-transparency",
        }
    }

    /// Resolve an axiom from its table label (the inverse of
    /// [`AxiomId::label`]). `None` for an unknown label — callers
    /// decoding persisted reports turn that into a schema error rather
    /// than a panic.
    pub fn from_label(label: &str) -> Option<AxiomId> {
        AxiomId::ALL.into_iter().find(|a| a.label() == label)
    }

    /// The paper's full statement of the axiom.
    pub fn statement(self) -> &'static str {
        match self {
            AxiomId::A1WorkerAssignment => {
                "Given two different workers wi and wj, if Awi ~ Awj, Cwi ~ Cwj and \
                 Swi ~ Swj, then wi and wj should have access to the same tasks."
            }
            AxiomId::A2RequesterAssignment => {
                "Given two tasks ti and tj posted by different requesters, if their \
                 required skills are similar and their rewards comparable, then ti \
                 and tj should be shown to the same set of workers."
            }
            AxiomId::A3Compensation => {
                "Given two distinct workers who contributed to the same task, if \
                 their contributions are similar, they should receive the same reward."
            }
            AxiomId::A4MaliceDetection => {
                "Requesters must be able to detect workers behaving maliciously \
                 during task completion."
            }
            AxiomId::A5NoInterruption => {
                "A worker who started completing a task should not be interrupted."
            }
            AxiomId::A6RequesterTransparency => {
                "A requester must make available requester-dependent working \
                 conditions (hourly wage, time between submission and payment) and \
                 task-dependent working conditions (recruitment and rejection criteria)."
            }
            AxiomId::A7PlatformTransparency => {
                "The platform must disclose, for each worker w, computed attributes \
                 Cw such as performance and acceptance ratio."
            }
        }
    }
}

impl fmt::Display for AxiomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete witness of an axiom violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which axiom.
    pub axiom: AxiomId,
    /// How severe, in `(0, 1]` (1 = maximal, e.g. total exclusion).
    pub severity: f64,
    /// Human-readable witness (which pair, what differed).
    pub description: String,
}

/// The result of checking one axiom over a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AxiomReport {
    /// Which axiom.
    pub axiom: AxiomId,
    /// Satisfaction score in `[0, 1]` (1 = fully satisfied).
    pub score: f64,
    /// Size of the quantifier domain examined (similar pairs, tasks, …).
    pub checked: usize,
    /// Violation witnesses (may be truncated; see `truncated`).
    pub violations: Vec<Violation>,
    /// Total violations found (≥ `violations.len()` when truncated).
    pub violation_count: usize,
    /// Whether the witness list was truncated.
    pub truncated: bool,
    /// Free-form diagnostics.
    pub notes: Vec<String>,
}

impl AxiomReport {
    /// An axiom satisfied vacuously (empty quantifier domain).
    pub fn vacuous(axiom: AxiomId, note: &str) -> Self {
        AxiomReport {
            axiom,
            score: 1.0,
            checked: 0,
            violations: Vec::new(),
            violation_count: 0,
            truncated: false,
            notes: vec![note.to_owned()],
        }
    }

    /// True when no violations were found.
    pub fn holds(&self) -> bool {
        self.violation_count == 0
    }
}

/// An executable axiom checker.
pub trait Axiom {
    /// Which axiom this checks.
    fn id(&self) -> AxiomId;

    /// Check the axiom over an indexed trace under the given similarity
    /// regime.
    fn check(
        &self,
        ix: &TraceIndex<'_>,
        cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport;

    /// Convenience for one-off checks: index the trace, then check. An
    /// audit running several axioms should build one [`TraceIndex`] and
    /// call [`Axiom::check`] instead (that is what
    /// [`crate::audit::AuditEngine`] does).
    fn check_trace(
        &self,
        trace: &Trace,
        cfg: &SimilarityConfig,
        max_witnesses: usize,
    ) -> AxiomReport {
        self.check(&TraceIndex::new(trace), cfg, max_witnesses)
    }
}

/// Collect violations with a cap, tracking the true total.
pub(crate) struct ViolationCollector {
    axiom: AxiomId,
    cap: usize,
    pub(crate) items: Vec<Violation>,
    pub(crate) total: usize,
}

impl ViolationCollector {
    pub(crate) fn new(axiom: AxiomId, cap: usize) -> Self {
        ViolationCollector {
            axiom,
            cap,
            items: Vec::new(),
            total: 0,
        }
    }

    pub(crate) fn push(&mut self, severity: f64, description: String) {
        self.total += 1;
        if self.items.len() < self.cap {
            self.items.push(Violation {
                axiom: self.axiom,
                severity,
                description,
            });
        }
    }

    pub(crate) fn truncated(&self) -> bool {
        self.total > self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axiom_ids_cover_paper() {
        assert_eq!(AxiomId::ALL.len(), 7);
        assert_eq!(AxiomId::FAIRNESS.len(), 5);
        assert_eq!(AxiomId::TRANSPARENCY.len(), 2);
        for id in AxiomId::ALL {
            assert!(!id.label().is_empty());
            assert!(!id.statement().is_empty());
        }
        assert_eq!(AxiomId::A3Compensation.to_string(), "A3-compensation");
    }

    #[test]
    fn vacuous_report_holds() {
        let r = AxiomReport::vacuous(AxiomId::A1WorkerAssignment, "no similar pairs");
        assert!(r.holds());
        assert_eq!(r.score, 1.0);
        assert_eq!(r.checked, 0);
    }

    #[test]
    fn collector_caps_but_counts() {
        let mut c = ViolationCollector::new(AxiomId::A3Compensation, 2);
        for i in 0..5 {
            c.push(1.0, format!("violation {i}"));
        }
        assert_eq!(c.items.len(), 2);
        assert_eq!(c.total, 5);
        assert!(c.truncated());
    }
}
