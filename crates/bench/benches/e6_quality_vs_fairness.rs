//! E6 — Contribution quality as a function of fairness level.
//!
//! Paper source: §4.1 — "objective measures such as quality of worker
//! contribution … can be used in controlled experiments to quantify the
//! level of fairness … of a system".
//!
//! Four platform configurations ranging from abusive to fair-by-design
//! run the same market. For each we report the audited overall fairness
//! score (the x-axis of the paper's proposed validation) against the
//! objective outcome measures: label quality, participation, and
//! retention. The behavioural link is the documented motivation model
//! (good-faith workers' effective accuracy degrades with frustration).

use faircrowd_bench::{banner, f2, f3, mean, run_seeds, TextTable};
use faircrowd_core::{enforce, metrics, AuditEngine, AxiomId, TraceIndex};
use faircrowd_model::disclosure::DisclosureSet;
use faircrowd_quality::spam::WorkerArchetype;
use faircrowd_sim::{
    ApprovalPolicy, CampaignSpec, CancellationPolicy, PolicyChoice, ScenarioConfig,
    WorkerPopulation,
};

struct Level {
    label: &'static str,
    configure: fn(u64) -> ScenarioConfig,
}

fn base(seed: u64) -> ScenarioConfig {
    // Sustained work supply: capacity 2/round against 1800 slots means
    // the market stays busy for the whole 72 rounds, so frustration has
    // time to feed back into the quality of work actually produced.
    let throttled = |mut p: WorkerPopulation| {
        p.capacity_per_round = 2;
        p
    };
    ScenarioConfig {
        seed,
        rounds: 72,
        n_skills: 0,
        workers: vec![
            throttled(WorkerPopulation::diligent(30)),
            throttled(WorkerPopulation::of(WorkerArchetype::Sloppy, 6)),
        ],
        campaigns: vec![CampaignSpec {
            target_approved: Some(900),
            assignments_per_task: 3,
            ..CampaignSpec::labeling("acme", 600, 10)
        }],
        ..Default::default()
    }
}

/// Strip the task-level disclosures too: an abusive requester publishes
/// no working conditions, so Axiom 6 fails at both levels.
fn opaque_conditions(cfg: &mut ScenarioConfig) {
    for c in &mut cfg.campaigns {
        c.conditions = faircrowd_model::task::TaskConditions::default();
    }
}

fn abusive(seed: u64) -> ScenarioConfig {
    let mut cfg = base(seed);
    cfg.policy = PolicyChoice::RequesterCentric;
    cfg.approval = ApprovalPolicy::RandomReject {
        reject_prob: 0.35,
        give_feedback: false,
    };
    cfg.cancellation = CancellationPolicy::CancelAtTarget {
        compensate_partial: false,
    };
    cfg.disclosure = DisclosureSet::opaque();
    cfg.detection = None;
    opaque_conditions(&mut cfg);
    cfg
}

fn careless(seed: u64) -> ScenarioConfig {
    let mut cfg = base(seed);
    cfg.policy = PolicyChoice::OnlineGreedy;
    cfg.approval = ApprovalPolicy::QualityThreshold {
        threshold: 0.6,
        noise: 0.25,
        give_feedback: false,
    };
    cfg.cancellation = CancellationPolicy::CancelAtTarget {
        compensate_partial: false,
    };
    cfg.disclosure = DisclosureSet::opaque();
    cfg.detection = None;
    opaque_conditions(&mut cfg);
    cfg
}

fn reasonable(seed: u64) -> ScenarioConfig {
    let mut cfg = base(seed);
    cfg.policy = PolicyChoice::SelfSelection;
    cfg.approval = ApprovalPolicy::QualityThreshold {
        threshold: 0.5,
        noise: 0.1,
        give_feedback: true,
    };
    cfg.cancellation = CancellationPolicy::CancelAtTarget {
        compensate_partial: true,
    };
    cfg.disclosure = enforce::minimal_transparent_set();
    cfg
}

fn fair_by_design(seed: u64) -> ScenarioConfig {
    let mut cfg = base(seed);
    cfg.policy = PolicyChoice::ParityOver(Box::new(PolicyChoice::SelfSelection));
    cfg.approval = ApprovalPolicy::QualityThreshold {
        threshold: 0.5,
        noise: 0.05,
        give_feedback: true,
    };
    cfg.cancellation = CancellationPolicy::GraceFinish;
    cfg.disclosure = DisclosureSet::fully_transparent();
    cfg
}

fn main() {
    banner(
        "E6",
        "contribution quality vs enforced fairness level",
        "paper §4.1 validation protocol (quality measure)",
    );

    let levels = [
        Level {
            label: "L0 abusive",
            configure: abusive,
        },
        Level {
            label: "L1 careless",
            configure: careless,
        },
        Level {
            label: "L2 reasonable",
            configure: reasonable,
        },
        Level {
            label: "L3 fair-by-design",
            configure: fair_by_design,
        },
    ];

    let engine = AuditEngine::with_defaults();
    let mut table = TextTable::new([
        "platform level",
        "fairness",
        "transparency",
        "quality",
        "subs/worker",
        "retention",
    ])
    .numeric();

    for level in &levels {
        let traces = run_seeds(level.configure);
        let indexes: Vec<TraceIndex> = traces.iter().map(TraceIndex::new).collect();
        let reports: Vec<_> = indexes
            .iter()
            .map(|ix| engine.run_indexed(ix, &AxiomId::ALL))
            .collect();
        let fairness = mean(reports.iter().map(|r| r.fairness_score()));
        let transparency = mean(reports.iter().map(|r| r.transparency_score()));
        let quality = mean(
            indexes
                .iter()
                .map(|ix| metrics::label_quality(ix).unwrap_or(0.0)),
        );
        let participation = mean(
            traces
                .iter()
                .map(|t| t.submissions.len() as f64 / t.workers.len() as f64),
        );
        let retention = mean(indexes.iter().map(metrics::retention));
        table.row([
            level.label.to_owned(),
            f3(fairness),
            f3(transparency),
            f3(quality),
            f2(participation),
            f3(retention),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nreading: the audited fairness score orders the four platforms as \
         designed, and the objective §4.1 measures follow it — label quality, \
         per-worker participation and retention all rise with the fairness \
         level (quality via the motivation model, participation via retention)."
    );
}
