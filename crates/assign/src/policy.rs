//! The assignment-policy interface.
//!
//! A policy receives a snapshot of the open marketplace — tasks with
//! remaining slots, workers with remaining capacity — and returns (a) the
//! **visibility sets**: which tasks each worker gets to see, and (b) the
//! assignments made. Axioms 1–2 judge the visibility sets; utilities judge
//! the assignments. Splitting the two is the point: a policy can be
//! utility-optimal and exposure-discriminatory at the same time, which is
//! exactly the §3.1.1 critique.

use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::time::SimDuration;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A task as a policy sees it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskView {
    /// Task id.
    pub id: TaskId,
    /// Posting requester.
    pub requester: RequesterId,
    /// Required skills.
    pub skills: SkillVector,
    /// Advertised reward.
    pub reward: Credits,
    /// Assignments still wanted.
    pub slots: u32,
    /// Estimated honest completion time.
    pub est_duration: SimDuration,
}

/// A worker as a policy sees her.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerView {
    /// Worker id.
    pub id: WorkerId,
    /// Skill/interest vector.
    pub skills: SkillVector,
    /// Platform quality estimate in `[0, 1]`.
    pub quality: f64,
    /// Tasks this worker can still take this round.
    pub capacity: u32,
    /// Demographic group along the platform's declared diversity axis
    /// (e.g. the simulator's `region` attribute), `None` when unknown.
    /// Diversity-constrained policies quota over this; plain policies
    /// ignore it.
    #[serde(default)]
    pub group: Option<String>,
}

impl WorkerView {
    /// The paper's qualification test against a task.
    pub fn qualifies(&self, task: &TaskView) -> bool {
        self.skills.covers(&task.skills)
    }
}

/// A marketplace snapshot handed to a policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssignInput {
    /// Open tasks.
    pub tasks: Vec<TaskView>,
    /// Available workers.
    pub workers: Vec<WorkerView>,
}

impl AssignInput {
    /// Total open slots.
    pub fn total_slots(&self) -> u64 {
        self.tasks.iter().map(|t| u64::from(t.slots)).sum()
    }

    /// Total worker capacity.
    pub fn total_capacity(&self) -> u64 {
        self.workers.iter().map(|w| u64::from(w.capacity)).sum()
    }
}

/// What a policy decided.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AssignmentOutcome {
    /// Which tasks each worker was shown (exposure).
    pub visibility: BTreeMap<WorkerId, BTreeSet<TaskId>>,
    /// Assignments made, in decision order.
    pub assignments: Vec<(WorkerId, TaskId)>,
}

impl AssignmentOutcome {
    /// Record that `worker` was shown `task`.
    pub fn show(&mut self, worker: WorkerId, task: TaskId) {
        self.visibility.entry(worker).or_default().insert(task);
    }

    /// Record an assignment; an assignment implies visibility (a worker
    /// cannot take a task she never saw).
    pub fn assign(&mut self, worker: WorkerId, task: TaskId) {
        self.show(worker, task);
        self.assignments.push((worker, task));
    }

    /// [`AssignmentOutcome::check_feasible`] as a `Result`: `Ok` when the
    /// outcome respects every structural invariant,
    /// [`faircrowd_model::FaircrowdError::InfeasibleAssignment`] naming
    /// the offending `policy` otherwise.
    pub fn ensure_feasible(
        &self,
        input: &AssignInput,
        policy: &str,
    ) -> Result<(), faircrowd_model::FaircrowdError> {
        let problems = self.check_feasible(input);
        if problems.is_empty() {
            Ok(())
        } else {
            Err(faircrowd_model::FaircrowdError::InfeasibleAssignment {
                policy: policy.to_owned(),
                problems,
            })
        }
    }

    /// Every outcome must satisfy these structural invariants:
    /// assignments ⊆ visibility, per-task slot limits, per-worker
    /// capacities, and qualification. Returns human-readable violations.
    pub fn check_feasible(&self, input: &AssignInput) -> Vec<String> {
        let mut problems = Vec::new();
        let tasks: BTreeMap<TaskId, &TaskView> = input.tasks.iter().map(|t| (t.id, t)).collect();
        let workers: BTreeMap<WorkerId, &WorkerView> =
            input.workers.iter().map(|w| (w.id, w)).collect();
        let mut per_task: BTreeMap<TaskId, u32> = BTreeMap::new();
        let mut per_worker: BTreeMap<WorkerId, u32> = BTreeMap::new();
        let mut seen_pairs: BTreeSet<(WorkerId, TaskId)> = BTreeSet::new();

        for &(w, t) in &self.assignments {
            if !seen_pairs.insert((w, t)) {
                problems.push(format!("{w} assigned to {t} more than once"));
            }
            match (workers.get(&w), tasks.get(&t)) {
                (Some(wv), Some(tv)) => {
                    if !wv.qualifies(tv) {
                        problems.push(format!("{w} not qualified for {t}"));
                    }
                }
                _ => problems.push(format!("assignment ({w}, {t}) references unknown entity")),
            }
            *per_task.entry(t).or_insert(0) += 1;
            *per_worker.entry(w).or_insert(0) += 1;
            let visible = self
                .visibility
                .get(&w)
                .map(|v| v.contains(&t))
                .unwrap_or(false);
            if !visible {
                problems.push(format!("{w} assigned {t} without visibility"));
            }
        }
        for (t, n) in per_task {
            if let Some(tv) = tasks.get(&t) {
                if n > tv.slots {
                    problems.push(format!("{t} over-assigned: {n} > {}", tv.slots));
                }
            }
        }
        for (w, n) in per_worker {
            if let Some(wv) = workers.get(&w) {
                if n > wv.capacity {
                    problems.push(format!("{w} over-capacity: {n} > {}", wv.capacity));
                }
            }
        }
        problems
    }
}

/// A task-assignment policy. Policies take `&mut self` so online
/// algorithms can carry state between rounds; the RNG is injected for
/// determinism.
pub trait AssignmentPolicy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Decide visibility and assignments for one round.
    fn assign(&mut self, input: &AssignInput, rng: &mut dyn RngCore) -> AssignmentOutcome;
}

/// A worker's preference for a task: reward (in dollars) scaled by skill
/// affinity. Workers like well-paid tasks that match their interests —
/// the §3.1.1 description of worker-centric assignment ("allocates tasks
/// based on workers' preferences … favoring their expected compensation").
pub fn preference_score(worker: &WorkerView, task: &TaskView) -> f64 {
    let reward = task.reward.as_dollars_f64();
    let affinity = worker.skills.cosine(&task.skills);
    reward * (1.0 + affinity)
}

/// Requester utility of an assignment: expected value = worker quality ×
/// task reward (the requester pays `reward` hoping for usable work, so a
/// quality-q worker yields q·reward of expected value).
pub fn requester_utility(input: &AssignInput, outcome: &AssignmentOutcome) -> f64 {
    let tasks: BTreeMap<TaskId, &TaskView> = input.tasks.iter().map(|t| (t.id, t)).collect();
    let workers: BTreeMap<WorkerId, &WorkerView> =
        input.workers.iter().map(|w| (w.id, w)).collect();
    outcome
        .assignments
        .iter()
        .filter_map(|(w, t)| {
            let wv = workers.get(w)?;
            let tv = tasks.get(t)?;
            Some(wv.quality * tv.reward.as_dollars_f64())
        })
        .sum()
}

/// Total worker utility of an assignment (sum of preference scores).
pub fn worker_utility(input: &AssignInput, outcome: &AssignmentOutcome) -> f64 {
    let tasks: BTreeMap<TaskId, &TaskView> = input.tasks.iter().map(|t| (t.id, t)).collect();
    let workers: BTreeMap<WorkerId, &WorkerView> =
        input.workers.iter().map(|w| (w.id, w)).collect();
    outcome
        .assignments
        .iter()
        .filter_map(|(w, t)| {
            let wv = workers.get(w)?;
            let tv = tasks.get(t)?;
            Some(preference_score(wv, tv))
        })
        .sum()
}

/// Shared fixture markets for tests, doctests and benches across the
/// workspace (kept tiny and deterministic on purpose).
pub mod fixtures {
    use super::*;

    /// Bits → skill vector.
    pub fn sv(bits: &[u8]) -> SkillVector {
        SkillVector::from_bools(bits.iter().map(|&b| b == 1))
    }

    /// A small market: 3 tasks × 4 workers, everyone qualified for t0,
    /// specialists for t1/t2.
    pub fn small_market() -> AssignInput {
        AssignInput {
            tasks: vec![
                TaskView {
                    id: TaskId::new(0),
                    requester: RequesterId::new(0),
                    skills: sv(&[0, 0]),
                    reward: Credits::from_cents(10),
                    slots: 2,
                    est_duration: SimDuration::from_mins(5),
                },
                TaskView {
                    id: TaskId::new(1),
                    requester: RequesterId::new(0),
                    skills: sv(&[1, 0]),
                    reward: Credits::from_cents(20),
                    slots: 1,
                    est_duration: SimDuration::from_mins(5),
                },
                TaskView {
                    id: TaskId::new(2),
                    requester: RequesterId::new(1),
                    skills: sv(&[0, 1]),
                    reward: Credits::from_cents(30),
                    slots: 1,
                    est_duration: SimDuration::from_mins(5),
                },
            ],
            workers: vec![
                WorkerView {
                    id: WorkerId::new(0),
                    skills: sv(&[1, 1]),
                    quality: 0.95,
                    capacity: 2,
                    group: Some("north".into()),
                },
                WorkerView {
                    id: WorkerId::new(1),
                    skills: sv(&[1, 0]),
                    quality: 0.8,
                    capacity: 1,
                    group: Some("south".into()),
                },
                WorkerView {
                    id: WorkerId::new(2),
                    skills: sv(&[0, 1]),
                    quality: 0.6,
                    capacity: 1,
                    group: Some("north".into()),
                },
                WorkerView {
                    id: WorkerId::new(3),
                    skills: sv(&[0, 0]),
                    quality: 0.4,
                    capacity: 1,
                    group: Some("south".into()),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::*;
    use super::*;

    #[test]
    fn qualification_follows_cover() {
        let m = small_market();
        // w3 has no skills: qualifies only for t0
        assert!(m.workers[3].qualifies(&m.tasks[0]));
        assert!(!m.workers[3].qualifies(&m.tasks[1]));
        // w0 has both skills: qualifies for all
        for t in &m.tasks {
            assert!(m.workers[0].qualifies(t));
        }
    }

    #[test]
    fn outcome_assign_implies_visibility() {
        let mut o = AssignmentOutcome::default();
        o.assign(WorkerId::new(0), TaskId::new(1));
        assert!(o.visibility[&WorkerId::new(0)].contains(&TaskId::new(1)));
    }

    #[test]
    fn feasibility_catches_violations() {
        let m = small_market();
        let mut o = AssignmentOutcome::default();
        // unqualified assignment
        o.assign(WorkerId::new(3), TaskId::new(1));
        // over-capacity for w2 (capacity 1)
        o.assign(WorkerId::new(2), TaskId::new(0));
        o.assign(WorkerId::new(2), TaskId::new(2));
        let problems = o.check_feasible(&m);
        assert!(problems.iter().any(|p| p.contains("not qualified")));
        assert!(problems.iter().any(|p| p.contains("over-capacity")));
    }

    #[test]
    fn feasibility_catches_assignment_without_visibility() {
        let m = small_market();
        let mut o = AssignmentOutcome::default();
        o.assignments.push((WorkerId::new(0), TaskId::new(0)));
        let problems = o.check_feasible(&m);
        assert!(problems.iter().any(|p| p.contains("without visibility")));
    }

    #[test]
    fn feasibility_catches_duplicates_and_overassignment() {
        let m = small_market();
        let mut o = AssignmentOutcome::default();
        o.assign(WorkerId::new(0), TaskId::new(1));
        o.assign(WorkerId::new(0), TaskId::new(1));
        let problems = o.check_feasible(&m);
        assert!(problems.iter().any(|p| p.contains("more than once")));
        assert!(problems.iter().any(|p| p.contains("over-assigned")));
    }

    #[test]
    fn utilities_sum_over_assignments() {
        let m = small_market();
        let mut o = AssignmentOutcome::default();
        o.assign(WorkerId::new(0), TaskId::new(2)); // quality .95 * $0.30
        o.assign(WorkerId::new(1), TaskId::new(1)); // quality .80 * $0.20
        let ru = requester_utility(&m, &o);
        assert!((ru - (0.95 * 0.30 + 0.80 * 0.20)).abs() < 1e-12);
        let wu = worker_utility(&m, &o);
        assert!(wu > 0.0);
    }

    #[test]
    fn preference_prefers_reward_and_affinity() {
        let m = small_market();
        let w0 = &m.workers[0];
        // t2 pays more than t1 and matches w0 equally -> preferred
        assert!(preference_score(w0, &m.tasks[2]) > preference_score(w0, &m.tasks[1]));
    }

    #[test]
    fn input_totals() {
        let m = small_market();
        assert_eq!(m.total_slots(), 4);
        assert_eq!(m.total_capacity(), 5);
    }
}
