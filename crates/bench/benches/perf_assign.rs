//! P2 — Assignment-policy scaling.
//!
//! Criterion micro-benchmark: one assignment round on markets of
//! increasing size for every policy, including the enforcement wrappers.
//! Worker-centric (Hungarian, O(n³) on the capacity-expanded matrix) is
//! the expensive one; the rest are near-linear in edges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd_assign::{
    AssignInput, AssignmentPolicy, ExposureParity, KosAllocation, OnlineMatching, RequesterCentric,
    RoundRobin, SelfSelection, TaskView, WorkerCentric, WorkerView,
};
use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn market(n_workers: u32, n_tasks: u32, seed: u64) -> AssignInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let skills = |rng: &mut StdRng| SkillVector::from_bools((0..8).map(|_| rng.gen_bool(0.5)));
    AssignInput {
        tasks: (0..n_tasks)
            .map(|i| TaskView {
                id: TaskId::new(i),
                requester: RequesterId::new(i % 3),
                skills: SkillVector::from_bools((0..8).map(|_| rng.gen_bool(0.15))),
                reward: Credits::from_cents(rng.gen_range(5..30)),
                slots: rng.gen_range(1..4),
                est_duration: SimDuration::from_mins(5),
            })
            .collect(),
        workers: (0..n_workers)
            .map(|i| WorkerView {
                id: WorkerId::new(i),
                skills: skills(&mut rng),
                quality: rng.gen_range(0.3..1.0),
                capacity: rng.gen_range(1..4),
                group: Some(["north", "south", "east", "west"][i as usize % 4].to_owned()),
            })
            .collect(),
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign_round");
    group.sample_size(10);
    let sizes = [(50u32, 50u32), (150, 100), (300, 200)];
    for (nw, nt) in sizes {
        let input = market(nw, nt, 42);
        let run = |policy: &mut dyn AssignmentPolicy| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(policy.assign(black_box(&input), &mut rng))
        };
        group.bench_function(
            BenchmarkId::new("self-selection", format!("{nw}x{nt}")),
            |b| b.iter(|| run(&mut SelfSelection)),
        );
        group.bench_function(BenchmarkId::new("round-robin", format!("{nw}x{nt}")), |b| {
            b.iter(|| run(&mut RoundRobin))
        });
        group.bench_function(
            BenchmarkId::new("requester-centric", format!("{nw}x{nt}")),
            |b| b.iter(|| run(&mut RequesterCentric)),
        );
        group.bench_function(
            BenchmarkId::new("online-greedy", format!("{nw}x{nt}")),
            |b| b.iter(|| run(&mut OnlineMatching)),
        );
        group.bench_function(BenchmarkId::new("kos(3,5)", format!("{nw}x{nt}")), |b| {
            b.iter(|| run(&mut KosAllocation { l: 3, r: 5 }))
        });
        group.bench_function(
            BenchmarkId::new("parity[req-centric]", format!("{nw}x{nt}")),
            |b| b.iter(|| run(&mut ExposureParity::new(RequesterCentric))),
        );
        // Hungarian only on the smaller instances (cubic).
        if nw <= 150 {
            group.bench_function(
                BenchmarkId::new("worker-centric", format!("{nw}x{nt}")),
                |b| b.iter(|| run(&mut WorkerCentric)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
