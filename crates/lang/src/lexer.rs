//! The TPL lexer.
//!
//! Tokens: keywords (`policy`, `audience`, `disclose`, `require`, `to`,
//! `when`, `always`, `before`, `requester`, `discloses`, `role`, `public`,
//! `subject`), identifiers (dotted paths allowed: `worker.accuracy`),
//! string literals, and punctuation. `#` starts a comment to end of line.

use crate::error::{LangError, Phase, Span};
use serde::{Deserialize, Serialize};

/// A TPL token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Token {
    /// `policy`
    Policy,
    /// `audience`
    Audience,
    /// `disclose`
    Disclose,
    /// `require`
    Require,
    /// `requester`
    Requester,
    /// `discloses`
    Discloses,
    /// `to`
    To,
    /// `when`
    When,
    /// `always`
    Always,
    /// `before`
    Before,
    /// `role`
    Role,
    /// `public`
    Public,
    /// `subject`
    Subject,
    /// An identifier or dotted path.
    Ident(String),
    /// A double-quoted string literal (contents, unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `;`
    Semi,
}

impl Token {
    /// Human name for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Str(s) => format!("string {s:?}"),
            other => format!("`{}`", other.literal()),
        }
    }

    fn literal(&self) -> &'static str {
        match self {
            Token::Policy => "policy",
            Token::Audience => "audience",
            Token::Disclose => "disclose",
            Token::Require => "require",
            Token::Requester => "requester",
            Token::Discloses => "discloses",
            Token::To => "to",
            Token::When => "when",
            Token::Always => "always",
            Token::Before => "before",
            Token::Role => "role",
            Token::Public => "public",
            Token::Subject => "subject",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::LParen => "(",
            Token::RParen => ")",
            Token::Eq => "=",
            Token::Semi => ";",
            Token::Ident(_) | Token::Str(_) => unreachable!(),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// Tokenise a TPL document.
pub fn lex(source: &str) -> Result<Vec<SpannedToken>, LangError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                tokens.push(tok(Token::LBrace, i, i + 1));
                i += 1;
            }
            b'}' => {
                tokens.push(tok(Token::RBrace, i, i + 1));
                i += 1;
            }
            b'(' => {
                tokens.push(tok(Token::LParen, i, i + 1));
                i += 1;
            }
            b')' => {
                tokens.push(tok(Token::RParen, i, i + 1));
                i += 1;
            }
            b'=' => {
                tokens.push(tok(Token::Eq, i, i + 1));
                i += 1;
            }
            b';' => {
                tokens.push(tok(Token::Semi, i, i + 1));
                i += 1;
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut value = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LangError::at(
                            Phase::Lex,
                            "unterminated string literal",
                            Span::new(start, source.len()),
                            source,
                        ));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1];
                            match esc {
                                b'"' => value.push('"'),
                                b'\\' => value.push('\\'),
                                b'n' => value.push('\n'),
                                _ => {
                                    return Err(LangError::at(
                                        Phase::Lex,
                                        format!("unknown escape `\\{}`", esc as char),
                                        Span::new(i, i + 2),
                                        source,
                                    ))
                                }
                            }
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LangError::at(
                                Phase::Lex,
                                "string literal crosses a line break",
                                Span::new(start, i),
                                source,
                            ))
                        }
                        c => {
                            value.push(c as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(tok(Token::Str(value), start, i));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    i += 1;
                }
                let word = &source[start..i];
                let token = match word {
                    "policy" => Token::Policy,
                    "audience" => Token::Audience,
                    "disclose" => Token::Disclose,
                    "require" => Token::Require,
                    "requester" => Token::Requester,
                    "discloses" => Token::Discloses,
                    "to" => Token::To,
                    "when" => Token::When,
                    "always" => Token::Always,
                    "before" => Token::Before,
                    "role" => Token::Role,
                    "public" => Token::Public,
                    "subject" => Token::Subject,
                    _ => Token::Ident(word.to_owned()),
                };
                tokens.push(tok(token, start, i));
            }
            other => {
                return Err(LangError::at(
                    Phase::Lex,
                    format!("unexpected character `{}`", other as char),
                    Span::point(i),
                    source,
                ))
            }
        }
    }
    Ok(tokens)
}

fn tok(token: Token, start: usize, end: usize) -> SpannedToken {
    SpannedToken {
        token,
        span: Span::new(start, end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<Token> {
        lex(source).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn lexes_keywords_and_punctuation() {
        let toks = kinds("policy \"p\" { disclose a.b to workers; }");
        assert_eq!(
            toks,
            vec![
                Token::Policy,
                Token::Str("p".into()),
                Token::LBrace,
                Token::Disclose,
                Token::Ident("a.b".into()),
                Token::To,
                Token::Ident("workers".into()),
                Token::Semi,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("# a comment\npolicy # trailing\n\"x\"");
        assert_eq!(toks, vec![Token::Policy, Token::Str("x".into())]);
    }

    #[test]
    fn dotted_identifiers() {
        let toks = kinds("worker.acceptance_ratio");
        assert_eq!(toks, vec![Token::Ident("worker.acceptance_ratio".into())]);
    }

    #[test]
    fn string_escapes() {
        let toks = kinds(r#""with \"quotes\" and \\slash""#);
        assert_eq!(toks, vec![Token::Str("with \"quotes\" and \\slash".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = lex("\"never ends").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn multiline_string_errors() {
        let err = lex("\"breaks\nhere\"").unwrap_err();
        assert!(err.message.contains("line break"));
    }

    #[test]
    fn unknown_character_errors_with_location() {
        let err = lex("policy @").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.span.unwrap().start, 7);
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = lex("disclose x").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 8));
        assert_eq!(toks[1].span, Span::new(9, 10));
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(Token::Disclose.describe(), "`disclose`");
        assert_eq!(Token::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(Token::Str("s".into()).describe(), "string \"s\"");
    }
}
