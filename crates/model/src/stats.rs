//! Statistical helpers shared across the workspace.
//!
//! The validation protocol (§4.1) asks for *objective measures* of fairness
//! and transparency. The inequality indices here (Gini, Atkinson, Theil,
//! Jain) quantify how unevenly exposure, wages or rewards are distributed;
//! the summary helpers support every experiment table.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for fewer than two values.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// p-th percentile (0–100) by linear interpolation; 0.0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Gini coefficient of a non-negative distribution, in `[0, 1]`.
/// 0 = perfectly equal; →1 = maximally concentrated. Returns 0.0 for
/// empty input or an all-zero distribution (nothing to distribute equals
/// "equally nothing").
pub fn gini(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(
        xs.iter().all(|&x| x >= 0.0),
        "gini needs non-negative input"
    );
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in gini input"));
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // G = (2 Σ i·x_i) / (n Σ x_i) - (n+1)/n  with 1-based i over sorted x
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted / (n as f64 * total) - (n as f64 + 1.0) / n as f64).clamp(0.0, 1.0)
}

/// Atkinson inequality index with aversion parameter `eps > 0` (≠ 1 uses
/// the power form, 1.0 uses the geometric-mean form). 0 = equal.
pub fn atkinson(xs: &[f64], eps: f64) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    debug_assert!(eps > 0.0, "atkinson aversion must be positive");
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    if (eps - 1.0).abs() < 1e-12 {
        // 1 - geometric mean / mean; zero incomes push the index to 1.
        if xs.iter().any(|&x| x <= 0.0) {
            return 1.0;
        }
        let log_mean = xs.iter().map(|&x| x.ln()).sum::<f64>() / n as f64;
        (1.0 - log_mean.exp() / m).clamp(0.0, 1.0)
    } else {
        let s = xs
            .iter()
            .map(|&x| (x / m).max(0.0).powf(1.0 - eps))
            .sum::<f64>()
            / n as f64;
        (1.0 - s.powf(1.0 / (1.0 - eps))).clamp(0.0, 1.0)
    }
}

/// Theil T index (≥ 0; 0 = equal). Zero values contribute zero (x·ln x → 0).
pub fn theil(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    let s: f64 = xs
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| (x / m) * (x / m).ln())
        .sum();
    (s / n as f64).max(0.0)
}

/// Jain's fairness index in `(0, 1]`; 1 = perfectly equal allocation.
/// Returns 1.0 for empty or all-zero input.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|&x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Five-number summary plus mean, used by experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl Summary {
    /// Summarise a sample; an empty sample yields all zeros.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Summary {
            n: v.len(),
            min: v[0],
            p25: percentile(&v, 25.0),
            median: percentile(&v, 50.0),
            p75: percentile(&v, 75.0),
            max: v[v.len() - 1],
            mean: mean(&v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        // population stddev of 2,4,4,4,5,5,7,9 is 2
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!((gini(&[1.0, 1.0, 1.0, 1.0])).abs() < 1e-12);
        // one person has everything among n: G = (n-1)/n
        let g = gini(&[0.0, 0.0, 0.0, 10.0]);
        assert!((g - 0.75).abs() < 1e-12);
        // order must not matter
        assert!((gini(&[3.0, 1.0, 2.0]) - gini(&[1.0, 2.0, 3.0])).abs() < 1e-12);
    }

    #[test]
    fn gini_monotone_under_concentration() {
        let even = gini(&[5.0, 5.0, 5.0, 5.0]);
        let mild = gini(&[4.0, 5.0, 5.0, 6.0]);
        let harsh = gini(&[1.0, 2.0, 3.0, 14.0]);
        assert!(even <= mild && mild < harsh);
    }

    #[test]
    fn atkinson_behaviour() {
        assert!((atkinson(&[2.0, 2.0, 2.0], 0.5)).abs() < 1e-12);
        let a = atkinson(&[1.0, 9.0], 0.5);
        assert!(a > 0.0 && a < 1.0);
        // eps = 1 branch with a zero income saturates
        assert_eq!(atkinson(&[0.0, 5.0], 1.0), 1.0);
        let a1 = atkinson(&[2.0, 8.0], 1.0);
        assert!(a1 > 0.0 && a1 < 1.0);
        assert_eq!(atkinson(&[], 0.5), 0.0);
    }

    #[test]
    fn theil_behaviour() {
        assert!((theil(&[3.0, 3.0, 3.0])).abs() < 1e-12);
        assert!(theil(&[1.0, 999.0]) > theil(&[400.0, 600.0]));
        assert_eq!(theil(&[]), 0.0);
        assert_eq!(theil(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn jain_behaviour() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // one of n gets everything -> 1/n
        assert!((jain_index(&[0.0, 0.0, 0.0, 8.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
    }
}
