//! Skill keywords and skill vectors.
//!
//! The paper fixes a set of skill keywords `S = {s1, …, sm}` and gives every
//! task a Boolean requirement vector `S_t = ⟨t(s1), …, t(sm)⟩` and every
//! worker a Boolean interest vector `S_w`. "Skill keywords may be
//! interpreted as expected workers' interests or qualifications" (§3.2).
//!
//! [`SkillUniverse`] interns keyword strings to dense [`SkillId`]s;
//! [`SkillVector`] is a bitset over that universe with the set algebra and
//! similarity kernels (cosine, Jaccard, Dice, Hamming) that Axioms 1–2 need.

use crate::ids::SkillId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The interned set of skill keywords `S = {s1, …, sm}`.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SkillUniverse {
    names: Vec<String>,
    by_name: HashMap<String, SkillId>,
}

impl SkillUniverse {
    /// An empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a universe from a list of keywords (duplicates are merged).
    pub fn from_keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut u = Self::new();
        for k in keywords {
            u.intern(k.as_ref());
        }
        u
    }

    /// Intern a keyword, returning its id (existing id if already present).
    pub fn intern(&mut self, name: &str) -> SkillId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = SkillId::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up a keyword without interning.
    pub fn get(&self, name: &str) -> Option<SkillId> {
        self.by_name.get(name).copied()
    }

    /// The keyword for an id, if in range.
    pub fn name(&self, id: SkillId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of keywords `m`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no keywords have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, keyword)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SkillId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SkillId::new(i as u32), n.as_str()))
    }

    /// A fresh all-false vector sized for this universe.
    pub fn empty_vector(&self) -> SkillVector {
        SkillVector::with_len(self.len())
    }

    /// Build a vector with the given keywords set (interning new ones is
    /// **not** done here; unknown keywords are ignored).
    pub fn vector_of<I, S>(&self, keywords: I) -> SkillVector
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut v = self.empty_vector();
        for k in keywords {
            if let Some(id) = self.get(k.as_ref()) {
                v.set(id, true);
            }
        }
        v
    }
}

const WORD_BITS: usize = 64;

/// A Boolean vector over the skill universe (`S_t` / `S_w` in the paper),
/// stored as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SkillVector {
    len: usize,
    words: Vec<u64>,
}

impl SkillVector {
    /// All-false vector of the given length.
    pub fn with_len(len: usize) -> Self {
        SkillVector {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Build from an iterator of Booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Self::with_len(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(SkillId::new(i as u32), *b);
        }
        v
    }

    /// Number of dimensions `m`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read one bit; out-of-range ids are reported as `false`.
    pub fn get(&self, id: SkillId) -> bool {
        let i = id.index();
        if i >= self.len {
            return false;
        }
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Write one bit. Panics if out of range (a task/worker must be built
    /// against the right universe).
    pub fn set(&mut self, id: SkillId, value: bool) {
        let i = id.index();
        assert!(
            i < self.len,
            "skill index {i} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Ids of set bits, ascending.
    pub fn iter_set(&self) -> impl Iterator<Item = SkillId> + '_ {
        (0..self.len)
            .map(|i| SkillId::new(i as u32))
            .filter(move |id| self.get(*id))
    }

    /// Size of the intersection with another vector.
    pub fn intersection_count(&self, other: &SkillVector) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Size of the union with another vector.
    pub fn union_count(&self, other: &SkillVector) -> usize {
        let shared: usize = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum();
        // Bits beyond the zip range (vectors of different lengths).
        let extra_self: usize = self
            .words
            .iter()
            .skip(other.words.len())
            .map(|w| w.count_ones() as usize)
            .sum();
        let extra_other: usize = other
            .words
            .iter()
            .skip(self.words.len())
            .map(|w| w.count_ones() as usize)
            .sum();
        shared + extra_self + extra_other
    }

    /// `self ⊇ other`: does this vector cover every requirement in `other`?
    /// This is the paper's qualification test — a worker qualifies for a
    /// task when her skill vector covers the task's requirement vector.
    pub fn covers(&self, other: &SkillVector) -> bool {
        for (i, &ow) in other.words.iter().enumerate() {
            let sw = self.words.get(i).copied().unwrap_or(0);
            if ow & !sw != 0 {
                return false;
            }
        }
        true
    }

    /// Cosine similarity between Boolean vectors:
    /// `|A ∩ B| / sqrt(|A| · |B|)`; 1.0 when both are empty (identical).
    pub fn cosine(&self, other: &SkillVector) -> f64 {
        let a = self.count();
        let b = other.count();
        if a == 0 && b == 0 {
            return 1.0;
        }
        if a == 0 || b == 0 {
            return 0.0;
        }
        self.intersection_count(other) as f64 / ((a as f64) * (b as f64)).sqrt()
    }

    /// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 1.0 when both empty.
    pub fn jaccard(&self, other: &SkillVector) -> f64 {
        let u = self.union_count(other);
        if u == 0 {
            return 1.0;
        }
        self.intersection_count(other) as f64 / u as f64
    }

    /// Dice coefficient `2|A ∩ B| / (|A| + |B|)`; 1.0 when both empty.
    pub fn dice(&self, other: &SkillVector) -> f64 {
        let denom = self.count() + other.count();
        if denom == 0 {
            return 1.0;
        }
        2.0 * self.intersection_count(other) as f64 / denom as f64
    }

    /// Hamming distance (number of differing coordinates over the longer
    /// length).
    pub fn hamming(&self, other: &SkillVector) -> usize {
        let max_words = self.words.len().max(other.words.len());
        let mut d = 0usize;
        for i in 0..max_words {
            let a = self.words.get(i).copied().unwrap_or(0);
            let b = other.words.get(i).copied().unwrap_or(0);
            d += (a ^ b).count_ones() as usize;
        }
        d
    }
}

impl fmt::Display for SkillVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for i in 0..self.len {
            let bit = self.get(SkillId::new(i as u32));
            write!(f, "{}", u8::from(bit))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(bits: &[u8]) -> SkillVector {
        SkillVector::from_bools(bits.iter().map(|&b| b == 1))
    }

    #[test]
    fn universe_interning() {
        let mut u = SkillUniverse::new();
        let a = u.intern("translation");
        let b = u.intern("image-labeling");
        let a2 = u.intern("translation");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.name(a), Some("translation"));
        assert_eq!(u.get("image-labeling"), Some(b));
        assert_eq!(u.get("nope"), None);
    }

    #[test]
    fn universe_vector_of() {
        let u = SkillUniverse::from_keywords(["a", "b", "c"]);
        let v = u.vector_of(["a", "c", "unknown"]);
        assert_eq!(v.count(), 2);
        assert!(v.get(u.get("a").unwrap()));
        assert!(!v.get(u.get("b").unwrap()));
        assert!(v.get(u.get("c").unwrap()));
    }

    #[test]
    fn bit_ops_across_word_boundary() {
        let mut sv = SkillVector::with_len(130);
        sv.set(SkillId::new(0), true);
        sv.set(SkillId::new(64), true);
        sv.set(SkillId::new(129), true);
        assert_eq!(sv.count(), 3);
        assert!(sv.get(SkillId::new(129)));
        assert!(!sv.get(SkillId::new(128)));
        sv.set(SkillId::new(64), false);
        assert_eq!(sv.count(), 2);
        // out-of-range get is false, not a panic
        assert!(!sv.get(SkillId::new(1000)));
    }

    #[test]
    fn covers_is_qualification() {
        let worker = v(&[1, 1, 0, 1]);
        let task = v(&[1, 0, 0, 1]);
        assert!(worker.covers(&task));
        assert!(!task.covers(&worker));
        // empty requirement: everyone qualifies
        assert!(worker.covers(&v(&[0, 0, 0, 0])));
    }

    #[test]
    fn cosine_known_values() {
        let a = v(&[1, 1, 0, 0]);
        let b = v(&[1, 0, 1, 0]);
        // |A∩B| = 1, sqrt(2*2) = 2
        assert!((a.cosine(&b) - 0.5).abs() < 1e-12);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&v(&[0, 0, 0, 0])), 0.0);
        assert_eq!(v(&[0, 0]).cosine(&v(&[0, 0])), 1.0);
    }

    #[test]
    fn jaccard_dice_hamming() {
        let a = v(&[1, 1, 0, 0]);
        let b = v(&[1, 0, 1, 0]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert!((a.dice(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn similarity_bounds_and_symmetry() {
        // small exhaustive sweep over 4-bit vectors
        for x in 0u8..16 {
            for y in 0u8..16 {
                let a = v(&[(x & 1), (x >> 1) & 1, (x >> 2) & 1, (x >> 3) & 1]);
                let b = v(&[(y & 1), (y >> 1) & 1, (y >> 2) & 1, (y >> 3) & 1]);
                for (sa, sb) in [
                    (a.cosine(&b), b.cosine(&a)),
                    (a.jaccard(&b), b.jaccard(&a)),
                    (a.dice(&b), b.dice(&a)),
                ] {
                    assert!((0.0..=1.0).contains(&sa), "similarity out of bounds");
                    assert!((sa - sb).abs() < 1e-12, "similarity not symmetric");
                }
            }
        }
    }

    #[test]
    fn union_with_unequal_lengths() {
        let a = v(&[1, 0, 1]);
        let mut b = SkillVector::with_len(130);
        b.set(SkillId::new(0), true);
        b.set(SkillId::new(128), true);
        assert_eq!(a.union_count(&b), 3);
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.hamming(&b), 2);
    }

    #[test]
    fn display_compact() {
        assert_eq!(v(&[1, 0, 1]).to_string(), "[101]");
    }
}
