//! The parallel scenario-sweep engine: grids of audits, one report.
//!
//! The paper's validation protocol (§4.1) is a *matrix*, not a run:
//! every objective measure — contribution quality for fairness, worker
//! retention for transparency — is taken across assignment policies,
//! seeds and marketplace scales before any conclusion is drawn. This
//! module executes that matrix. A [`SweepGrid`] names the axes
//! (scenarios × policies × strategies × seeds × scales × rounds ×
//! enforcement stacks × aggregators), [`SweepGrid::expand`] takes their
//! Cartesian product into
//! concrete [`SweepCase`]s, and [`run_grid`] drives every case through
//! the [`Pipeline`] on a `std::thread::scope` worker
//! pool, folding the resulting reports into per-cell aggregates
//! ([`faircrowd_core::aggregate`]) exportable as a table, JSON or CSV.
//! Each case's trace is indexed once (`faircrowd_core::TraceIndex`) and
//! shared across its audit and enforcement re-audit, rather than every
//! axiom re-deriving its own maps per cell.
//!
//! Two guarantees shape the design:
//!
//! 1. **Determinism across parallelism.** Each case is a pure function
//!    of its config (the simulator is seeded; see `faircrowd-sim`), the
//!    worker pool writes results by case index, and every reduction is
//!    order-independent — so `--jobs 1` and `--jobs 8` produce
//!    byte-identical JSON and CSV.
//! 2. **Fail-fast validation.** All scenario, policy and enforcement
//!    names resolve during [`SweepGrid::expand`], before any thread
//!    spawns, with errors listing the valid names.
//!
//! With PR 3's `TraceIndex` making audits cheap, **simulation is the
//! dominant cost of a sweep cell** — so the engine caches simulated
//! baseline traces by `(scenario, policy, strategy, seed, scale,
//! rounds)`. Cases
//! that differ only on the `enforce` axis are the same platform run
//! audited under different repairs: instead of each re-running the
//! simulator, they draw on one keyed [`OnceLock`]-guarded slot,
//! consulted lazily — the empty-stack cell audits (a clone of) the
//! shared baseline, while enforced cells re-simulate only their
//! *repaired* config and skip the baseline simulation and its unread
//! audit entirely ([`Pipeline::run_final_with_baseline`]). The
//! simulator is a pure function of its config, so cached and uncached
//! sweeps are byte-identical ([`run_grid_opts`] exposes the switch;
//! `tests/sweep_determinism.rs` and the `traceio_baseline` bench pin
//! equality and the wall-clock win).
//!
//! Grid syntax (the CLI's `--grid` argument): `;`-separated
//! `axis=value,value,…` entries —
//!
//! ```text
//! policy=*;seed=0..8;scenario=baseline,spam_campaign;scale=1,2;enforce=none,parity+grace
//! ```
//!
//! `policy=*` means every registry policy, `scenario=*` every catalog
//! scenario, `strategy=*` every agent-strategy profile (strategic
//! cells are iterated to their fixed point before auditing; see
//! `faircrowd_sim::converge`), `aggregator=*` every registered
//! consensus aggregator (see [`faircrowd_quality::aggregate`]); `seed`
//! accepts half-open `a..b` and
//! inclusive `a..=b` ranges (reversed bounds are rejected as typos);
//! `enforce` stacks repairs with `+` (`none` for the empty stack).
//! Omitted axes default to a single point: the `baseline` scenario,
//! its own policy, strategy and round count, seed 42, scale 1, no
//! enforcement, majority-vote aggregation.
//!
//! Aggregation is **post-simulation**: the `aggregator` axis rescores
//! one trace's answer matrix, so it never forks the simulation cache —
//! cells differing only on the aggregator share a baseline exactly as
//! `enforce`-only siblings do.
//!
//! ```
//! use faircrowd::sweep::{self, SweepGrid};
//!
//! let grid = SweepGrid::parse("policy=round_robin,kos;seed=0..4;rounds=8")?;
//! let result = sweep::run_grid(&grid, 2)?;
//! assert_eq!(result.cases.len(), 8); // 2 policies × 4 seeds
//! assert_eq!(result.groups.len(), 2); // aggregated across seeds
//! println!("{}", result.render_table());
//! # Ok::<(), faircrowd::FaircrowdError>(())
//! ```

pub mod shard;

use crate::core::aggregate::{ReportAggregate, ScoreStats};
use crate::core::report::TextTable;
use crate::core::{AuditConfig, FairnessReport};
use crate::model::{FaircrowdError, Trace};
use crate::pay::WageStats;
use crate::pipeline::{Enforcement, Pipeline};
use crate::quality::aggregate::{AggregateContext, AggregatorChoice};
use crate::quality::{majority_vote, AnswerSet, GoldSet};
use crate::sim::{catalog, strategy, PolicyChoice, StrategyChoice, TraceSummary};
use faircrowd_assign::registry;
use faircrowd_model::contribution::Contribution;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The axes of a sweep. Every field is an optional axis; `None` means
/// the single default point documented on [the module](self). Parse one
/// from the CLI grid syntax with [`SweepGrid::parse`] or build it
/// programmatically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepGrid {
    /// Catalog scenario names (default: `["baseline"]`).
    pub scenarios: Option<Vec<String>>,
    /// Registry policy names overriding each scenario's own policy
    /// (default: keep the scenario's policy).
    pub policies: Option<Vec<String>>,
    /// Simulation seeds (default: `[42]`).
    pub seeds: Option<Vec<u64>>,
    /// Marketplace scale factors applied via
    /// [`ScenarioConfig::at_scale`](crate::sim::ScenarioConfig::at_scale)
    /// (default: `[1.0]`).
    pub scales: Option<Vec<f64>>,
    /// Market-round overrides (default: each scenario's own rounds).
    pub rounds: Option<Vec<u32>>,
    /// Enforcement stacks; the empty stack audits without repair
    /// (default: `[[]]`).
    pub enforcements: Option<Vec<Vec<Enforcement>>>,
    /// Strategy-registry names overriding each scenario's own strategy
    /// (default: keep the scenario's strategy). Strategic cells are
    /// iterated to their fixed point by the pipeline before auditing.
    pub strategies: Option<Vec<String>>,
    /// Aggregator-registry names the consensus-quality column is scored
    /// under (default: `["majority"]`). Post-simulation: never forks
    /// the simulation cache.
    pub aggregators: Option<Vec<String>>,
}

impl SweepGrid {
    /// Parse the CLI grid syntax; see [the module docs](self) for the
    /// grammar. Unknown axes and malformed values are usage errors that
    /// name what is valid.
    pub fn parse(spec: &str) -> Result<SweepGrid, FaircrowdError> {
        let mut grid = SweepGrid::default();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let (key, values) = entry.split_once('=').ok_or_else(|| {
                FaircrowdError::usage(format!("grid entry `{entry}` is not `axis=value[,value…]`"))
            })?;
            let key = key.trim();
            let values = values.trim();
            if values.is_empty() {
                return Err(FaircrowdError::usage(format!("grid axis `{key}` is empty")));
            }
            let taken = match key {
                "scenario" => replace_axis(
                    &mut grid.scenarios,
                    parse_star_list(values, &catalog::NAMES),
                ),
                "policy" => replace_axis(
                    &mut grid.policies,
                    parse_star_list(values, &registry::NAMES),
                ),
                "seed" => replace_axis(&mut grid.seeds, parse_seeds(values)?),
                "scale" => replace_axis(&mut grid.scales, parse_scales(values)?),
                "rounds" => replace_axis(&mut grid.rounds, parse_list(values, key)?),
                "enforce" => replace_axis(&mut grid.enforcements, parse_enforce_axis(values)?),
                "strategy" => replace_axis(
                    &mut grid.strategies,
                    parse_star_list(values, &strategy::NAMES),
                ),
                "aggregator" => replace_axis(
                    &mut grid.aggregators,
                    parse_star_list(values, &crate::quality::aggregate::NAMES),
                ),
                _ => {
                    return Err(FaircrowdError::usage(format!(
                        "unknown grid axis `{key}`; valid axes: \
                         scenario | policy | seed | scale | rounds | enforce | strategy \
                         | aggregator"
                    )))
                }
            };
            if !taken {
                return Err(FaircrowdError::usage(format!(
                    "grid axis `{key}` given twice"
                )));
            }
        }
        Ok(grid)
    }

    /// Expand the grid into concrete cases — the Cartesian product of
    /// all axes, seeds innermost so each aggregate group is one
    /// contiguous run of cases. Resolves and validates every scenario,
    /// policy and enforcement name up front.
    pub fn expand(&self) -> Result<Vec<SweepCase>, FaircrowdError> {
        let scenarios = self
            .scenarios
            .clone()
            .unwrap_or_else(|| vec!["baseline".to_owned()]);
        let seeds = self.seeds.clone().unwrap_or_else(|| vec![42]);
        let scales = self.scales.clone().unwrap_or_else(|| vec![1.0]);
        let stacks = self
            .enforcements
            .clone()
            .unwrap_or_else(|| vec![Vec::new()]);
        // (aggregator override, display label) pairs; scenario-free.
        let aggregators: Vec<(Option<String>, String)> = match &self.aggregators {
            None => vec![(None, AggregatorChoice::Majority.label())],
            Some(names) => names
                .iter()
                .map(|n| Ok((Some(n.clone()), AggregatorChoice::by_name(n)?.label())))
                .collect::<Result<_, FaircrowdError>>()?,
        };

        let mut cases = Vec::new();
        for scenario in &scenarios {
            let base = catalog::get(scenario)?;
            // (policy override, display label) pairs for this scenario.
            let policies: Vec<(Option<String>, String)> = match &self.policies {
                None => vec![(None, base.policy.label())],
                Some(names) => names
                    .iter()
                    .map(|n| Ok((Some(n.clone()), PolicyChoice::by_name(n)?.label())))
                    .collect::<Result<_, FaircrowdError>>()?,
            };
            let rounds_axis = self.rounds.clone().unwrap_or_else(|| vec![base.rounds]);
            // (strategy override, display label) pairs for this scenario.
            let strategies: Vec<(Option<String>, String)> = match &self.strategies {
                None => vec![(None, base.strategy.label().to_owned())],
                Some(names) => names
                    .iter()
                    .map(|n| {
                        Ok((
                            Some(n.clone()),
                            StrategyChoice::by_name(n)?.label().to_owned(),
                        ))
                    })
                    .collect::<Result<_, FaircrowdError>>()?,
            };
            for (policy, policy_label) in &policies {
                for (strategy, strategy_label) in &strategies {
                    for &scale in &scales {
                        for &rounds in &rounds_axis {
                            for stack in &stacks {
                                for (aggregator, aggregator_label) in &aggregators {
                                    for &seed in &seeds {
                                        cases.push(SweepCase {
                                            scenario: scenario.clone(),
                                            policy: policy.clone(),
                                            policy_label: policy_label.clone(),
                                            strategy: strategy.clone(),
                                            strategy_label: strategy_label.clone(),
                                            seed,
                                            scale,
                                            rounds,
                                            enforcements: stack.clone(),
                                            aggregator: aggregator.clone(),
                                            aggregator_label: aggregator_label.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cases)
    }

    /// Number of seeds per aggregate group (the innermost axis length).
    fn seeds_per_group(&self) -> usize {
        self.seeds.as_ref().map_or(1, Vec::len)
    }
}

/// Replace an axis slot, reporting whether it was still unset.
fn replace_axis<T>(slot: &mut Option<T>, value: T) -> bool {
    let fresh = slot.is_none();
    *slot = Some(value);
    fresh
}

/// `*` → the full name list; otherwise a comma-separated list (names
/// are validated later, at expansion, so errors carry the catalog).
fn parse_star_list(values: &str, all: &[&str]) -> Vec<String> {
    if values == "*" {
        all.iter().map(|n| (*n).to_owned()).collect()
    } else {
        values.split(',').map(|v| v.trim().to_owned()).collect()
    }
}

fn parse_list<T: std::str::FromStr>(values: &str, axis: &str) -> Result<Vec<T>, FaircrowdError> {
    values
        .split(',')
        .map(|v| {
            v.trim().parse().map_err(|_| {
                FaircrowdError::usage(format!("invalid value `{v}` for grid axis `{axis}`"))
            })
        })
        .collect()
}

/// Seeds: comma-separated integers, half-open `a..b` ranges and
/// inclusive `a..=b` ranges. Reversed bounds are rejected with their own
/// error (a reversed range is a typo, not an intentionally empty axis).
fn parse_seeds(values: &str) -> Result<Vec<u64>, FaircrowdError> {
    let mut seeds = Vec::new();
    for part in values.split(',') {
        let part = part.trim();
        if let Some((lo, hi)) = part.split_once("..") {
            let parse = |s: &str| -> Result<u64, FaircrowdError> {
                s.trim()
                    .parse()
                    .map_err(|_| FaircrowdError::usage(format!("invalid seed range `{part}`")))
            };
            let (inclusive, hi) = match hi.strip_prefix('=') {
                Some(rest) => (true, rest),
                None => (false, hi),
            };
            let (lo, hi) = (parse(lo)?, parse(hi)?);
            if lo > hi {
                return Err(FaircrowdError::usage(format!(
                    "reversed seed range `{part}`: the lower bound {lo} exceeds the upper \
                     bound {hi} (write {hi}..{} for the ascending range)",
                    if inclusive {
                        format!("={lo}")
                    } else {
                        lo.to_string()
                    }
                )));
            }
            if inclusive {
                seeds.extend(lo..=hi);
            } else {
                if lo == hi {
                    return Err(FaircrowdError::usage(format!(
                        "empty seed range `{part}` (use lo..hi with lo < hi, or lo..=hi to \
                         include the upper bound)"
                    )));
                }
                seeds.extend(lo..hi);
            }
        } else {
            seeds.push(
                part.parse()
                    .map_err(|_| FaircrowdError::usage(format!("invalid seed `{part}`")))?,
            );
        }
    }
    Ok(seeds)
}

fn parse_scales(values: &str) -> Result<Vec<f64>, FaircrowdError> {
    let scales: Vec<f64> = parse_list(values, "scale")?;
    for &s in &scales {
        if !(s.is_finite() && s > 0.0) {
            return Err(FaircrowdError::usage(format!(
                "scale factors must be positive and finite, got `{s}`"
            )));
        }
    }
    Ok(scales)
}

/// Enforcement stacks: `none` or `+`-joined enforcement specs.
fn parse_enforce_axis(values: &str) -> Result<Vec<Vec<Enforcement>>, FaircrowdError> {
    values
        .split(',')
        .map(|stack| {
            let stack = stack.trim();
            if stack == "none" {
                return Ok(Vec::new());
            }
            stack
                .split('+')
                .map(|e| Enforcement::parse(e.trim()))
                .collect()
        })
        .collect()
}

/// Display label for an enforcement stack.
pub fn stack_label(stack: &[Enforcement]) -> String {
    if stack.is_empty() {
        "none".to_owned()
    } else {
        stack
            .iter()
            .map(Enforcement::label)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// One fully resolved grid cell × seed: everything needed to run one
/// pipeline pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCase {
    /// Catalog scenario name.
    pub scenario: String,
    /// Policy override (registry name), `None` to keep the scenario's.
    pub policy: Option<String>,
    /// Display label of the effective policy.
    pub policy_label: String,
    /// Strategy override (strategy-registry name), `None` to keep the
    /// scenario's.
    pub strategy: Option<String>,
    /// Display label of the effective strategy.
    pub strategy_label: String,
    /// Simulation seed.
    pub seed: u64,
    /// Marketplace scale factor.
    pub scale: f64,
    /// Market rounds.
    pub rounds: u32,
    /// Enforcement stack applied before the second audit pass.
    pub enforcements: Vec<Enforcement>,
    /// Aggregator override (aggregator-registry name), `None` for
    /// majority vote. Post-simulation, so absent from the sim key.
    pub aggregator: Option<String>,
    /// Display label of the effective aggregator.
    pub aggregator_label: String,
}

impl SweepCase {
    /// Build the pipeline this case describes.
    ///
    /// The pipeline indexes each simulated trace once (`TraceIndex`) and
    /// shares it across the audit and the enforcement re-audit; the
    /// sweep contributes nothing per-case beyond configuration. Axiom
    /// fan-out is kept serial here — the sweep's own worker pool already
    /// saturates the cores, and nesting thread pools would oversubscribe
    /// without changing any output (reports are identical either way).
    pub fn pipeline(&self) -> Result<Pipeline, FaircrowdError> {
        let mut config = catalog::get(&self.scenario)?.at_scale(self.scale);
        config.seed = self.seed;
        config.rounds = self.rounds;
        let mut pipeline = Pipeline::new().scenario(config).audit(AuditConfig {
            parallel: false,
            ..AuditConfig::default()
        });
        if let Some(name) = &self.policy {
            pipeline = pipeline.policy_name(name)?;
        }
        if let Some(name) = &self.strategy {
            pipeline = pipeline.strategy_name(name)?;
        }
        for enforcement in &self.enforcements {
            pipeline = pipeline.enforce(enforcement.clone());
        }
        Ok(pipeline)
    }

    /// The consensus aggregator this case scores label quality under.
    pub fn aggregator_choice(&self) -> Result<AggregatorChoice, FaircrowdError> {
        match &self.aggregator {
            None => Ok(AggregatorChoice::Majority),
            Some(name) => AggregatorChoice::by_name(name),
        }
    }

    /// Run the case: simulate, audit (and repair + re-audit when the
    /// stack is non-empty), keeping the final report and summary.
    pub fn run(&self) -> Result<CaseOutcome, FaircrowdError> {
        let aggregator = self.aggregator_choice()?;
        let result = self.pipeline()?.run()?;
        let consensus = consensus_accuracy(result.trace(), &aggregator);
        Ok(self.outcome_of(result, consensus))
    }

    /// Run the case with its baseline trace supplied lazily (the
    /// simulation-cache path: `baseline` pulls a clone from the shared
    /// per-key slot, and is only invoked when the case actually audits
    /// the baseline — enforced cells re-simulate a repaired config and
    /// never touch it). Identical output to [`SweepCase::run`]: the
    /// simulator is a pure function of the case's config, so a cached
    /// trace is *the* trace this case would have simulated, and the cell
    /// folds only the *final* report, which the lean
    /// [`Pipeline::run_final_with_baseline`] path returns unchanged.
    pub fn run_with_baseline(
        &self,
        baseline: impl FnOnce() -> Result<Trace, FaircrowdError>,
    ) -> Result<CaseOutcome, FaircrowdError> {
        let aggregator = self.aggregator_choice()?;
        let artifacts = self.pipeline()?.run_final_with_baseline(baseline)?;
        Ok(CaseOutcome {
            consensus: consensus_accuracy(&artifacts.trace, &aggregator),
            report: artifacts.report,
            summary: artifacts.summary,
            wages: artifacts.wages,
            case: self.clone(),
        })
    }

    fn outcome_of(
        &self,
        result: crate::pipeline::PipelineResult,
        consensus: Option<f64>,
    ) -> CaseOutcome {
        CaseOutcome {
            report: result.report().clone(),
            summary: result.summary().clone(),
            wages: result.wages(),
            consensus,
            case: self.clone(),
        }
    }

    /// The simulation-cache key: everything that determines the
    /// **baseline** trace. The `enforce` axis is deliberately absent —
    /// enforcement repairs re-simulate a *different* config in the
    /// second pipeline pass, but the baseline run they are compared
    /// against is shared across the whole stack axis.
    fn sim_key(&self) -> (String, Option<String>, Option<String>, u64, u64, u32) {
        (
            self.scenario.clone(),
            self.policy.clone(),
            self.strategy.clone(),
            self.seed,
            self.scale.to_bits(),
            self.rounds,
        )
    }
}

/// Consensus quality of a finished trace under an aggregator: the
/// inferred labels' accuracy against the **full** labeling ground
/// truth, with undecided tasks counting as wrong — an aggregator that
/// buys demographic parity by withdrawing coverage pays for it here,
/// which is exactly the trade-off the policy frontier charts. Worker
/// weights are peer-agreement rates (platform-observable; no ground
/// truth leaks into inference) and parity groups come from each
/// worker's declared `region` attribute. `None` when the run had no
/// labeling ground truth to score against.
pub fn consensus_accuracy(trace: &Trace, aggregator: &AggregatorChoice) -> Option<f64> {
    let truth = &trace.ground_truth.true_labels;
    if truth.is_empty() {
        return None;
    }
    let mut classes = 2u8;
    for s in &trace.submissions {
        if let Contribution::Label(l) = s.contribution {
            classes = classes.max(l.saturating_add(1));
        }
    }
    for &l in truth.values() {
        classes = classes.max(l.saturating_add(1));
    }
    let mut answers = AnswerSet::new(classes);
    for s in &trace.submissions {
        if let Contribution::Label(l) = s.contribution {
            answers.record(s.worker, s.task, l);
        }
    }
    // Reliability weights: each worker's agreement with the plain
    // majority consensus over decided tasks — platform-observable, no
    // ground truth leaking into inference.
    let majority = majority_vote(&answers);
    let mut agreement: std::collections::BTreeMap<_, (usize, usize)> = Default::default();
    for a in answers.answers() {
        if let Some(&label) = majority.get(&a.task) {
            let e = agreement.entry(a.worker).or_insert((0, 0));
            e.0 += usize::from(a.label == label);
            e.1 += 1;
        }
    }
    let ctx = AggregateContext {
        weights: agreement
            .into_iter()
            .map(|(w, (hit, total))| (w, hit as f64 / total as f64))
            .collect(),
        groups: trace
            .workers
            .iter()
            .filter_map(|w| w.declared.group_key("region").map(|g| (w.id, g)))
            .collect(),
    };
    let labels = aggregator.aggregate(&answers, &ctx);
    let mut gold = GoldSet::new();
    for (&task, &label) in truth {
        gold.insert(task, label);
    }
    Some(gold.score_labels(&labels).accuracy())
}

/// What one executed case contributes to the aggregates.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The case that ran.
    pub case: SweepCase,
    /// The final audit (the re-audit when enforcement ran).
    pub report: FairnessReport,
    /// The final market summary.
    pub summary: TraceSummary,
    /// Effective-wage statistics of the final run; `None` when no
    /// worker invested time. Absent wages are **skipped** by the cell
    /// fold, never averaged in as gini-0/jain-1 "perfect fairness".
    pub wages: Option<WageStats>,
    /// Consensus accuracy under the case's aggregator
    /// ([`consensus_accuracy`]); `None` when the run carried no
    /// labeling ground truth. Like wages, absent values are skipped by
    /// the cell fold.
    pub consensus: Option<f64>,
}

/// One grid cell's aggregate across its seeds.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Scenario name.
    pub scenario: String,
    /// Effective policy label.
    pub policy: String,
    /// Effective strategy label.
    pub strategy: String,
    /// Scale factor.
    pub scale: f64,
    /// Market rounds.
    pub rounds: u32,
    /// Enforcement-stack label (`"none"` when empty).
    pub enforce: String,
    /// Effective aggregator label.
    pub aggregator: String,
    /// The seeds folded into this cell, ascending.
    pub seeds: Vec<u64>,
    /// Axiom/score aggregate across the seeds.
    pub aggregate: ReportAggregate,
    /// Worker-retention statistics across the seeds.
    pub retention: ScoreStats,
    /// Mean hourly wage (dollars/h) across the seeds **that had a wage
    /// distribution**; `n` < `seeds.len()` means some runs paid for no
    /// invested time and were skipped, `n == 0` means the whole cell
    /// was wage-less (exported as `null`, not as perfect fairness).
    pub wage_mean: ScoreStats,
    /// Wage Gini coefficient across the same seeds.
    pub wage_gini: ScoreStats,
    /// Consensus accuracy under the cell's aggregator, across the seeds
    /// **that had labeling ground truth**; `n == 0` means none did (the
    /// column exports as `null`/empty, never as a fabricated score).
    pub consensus: ScoreStats,
}

/// The result of running a grid: per-case outcomes (grid order) and
/// per-cell aggregates.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Every executed case, in grid-expansion order.
    pub cases: Vec<CaseOutcome>,
    /// Per-cell aggregates across seeds, in grid order.
    pub groups: Vec<GroupSummary>,
}

/// Run every case of `grid` on a pool of `jobs` worker threads
/// (clamped to at least 1) and fold the reports into per-cell
/// aggregates. Output is deterministic: identical for any `jobs`, and
/// identical with the simulation cache on (the default) or off.
pub fn run_grid(grid: &SweepGrid, jobs: usize) -> Result<SweepResult, FaircrowdError> {
    run_grid_opts(grid, jobs, true)
}

/// [`run_grid`] with the baseline-simulation cache switchable.
/// `reuse_sim: false` re-simulates every case from scratch — it exists
/// for the determinism tests and the `traceio_baseline` bench, which
/// pin that the cache changes wall-clock and nothing else.
pub fn run_grid_opts(
    grid: &SweepGrid,
    jobs: usize,
    reuse_sim: bool,
) -> Result<SweepResult, FaircrowdError> {
    run_grid_observed(grid, jobs, reuse_sim, None)
}

/// A per-cell completion observer: called from worker threads, once
/// per case as it finishes, with the case's grid-expansion index — in
/// completion order, not grid order. `None` observes nothing.
pub type CellHook<'a> = Option<&'a (dyn Fn(usize, &CaseOutcome) + Sync)>;

/// [`run_grid_opts`] with a per-cell completion hook (the CLI's
/// `--progress`). The hook observes; it cannot change any output, so
/// observed and unobserved sweeps stay byte-identical.
pub fn run_grid_observed(
    grid: &SweepGrid,
    jobs: usize,
    reuse_sim: bool,
    on_done: CellHook<'_>,
) -> Result<SweepResult, FaircrowdError> {
    let cases = grid.expand()?;
    let outcomes = run_cases(&cases, jobs, reuse_sim, on_done)?;
    Ok(SweepResult {
        groups: fold_groups(&outcomes, grid.seeds_per_group()),
        cases: outcomes,
    })
}

/// One slot of the simulation cache: filled exactly once, by whichever
/// worker needs its key first; later takers clone the `Arc`'d trace.
type SimSlot = OnceLock<Result<Arc<Trace>, FaircrowdError>>;

/// Execute `cases` on `jobs` scoped worker threads. Work is pulled off
/// a shared atomic counter; results land in their case's slot, so the
/// output order is the input order regardless of thread scheduling.
///
/// With `reuse_sim`, cases sharing a [`SweepCase::sim_key`] (i.e.
/// differing only on the enforcement stack) pull their baseline from
/// one keyed [`OnceLock`] slot: the first taker fills it with a single
/// simulation, concurrent takers block on that instead of running their
/// own, and the slot is consulted **lazily** — an enforced cell
/// re-simulates its repaired config and never touches the baseline, so
/// it neither simulates nor clones one.
fn run_cases(
    cases: &[SweepCase],
    jobs: usize,
    reuse_sim: bool,
    on_done: CellHook<'_>,
) -> Result<Vec<CaseOutcome>, FaircrowdError> {
    let jobs = jobs.max(1).min(cases.len().max(1));

    // Key interning pass: case index → dense cache-slot index.
    let mut slot_of_key = HashMap::new();
    let slot_of_case: Vec<usize> = cases
        .iter()
        .map(|case| {
            let next = slot_of_key.len();
            *slot_of_key.entry(case.sim_key()).or_insert(next)
        })
        .collect();
    let sim_cache: Vec<SimSlot> = (0..slot_of_key.len()).map(|_| OnceLock::new()).collect();

    let slots: Vec<Mutex<Option<Result<CaseOutcome, FaircrowdError>>>> =
        cases.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else { break };
                let outcome = if reuse_sim {
                    // Lazy: only consulted (and only then simulated /
                    // cloned) when the case audits the baseline.
                    case.run_with_baseline(|| {
                        sim_cache[slot_of_case[i]]
                            .get_or_init(|| {
                                case.pipeline().and_then(|p| p.simulate()).map(Arc::new)
                            })
                            .as_ref()
                            .map(|trace| Trace::clone(trace))
                            .map_err(FaircrowdError::clone)
                    })
                } else {
                    case.run()
                };
                if let (Some(on_done), Ok(outcome)) = (on_done, &outcome) {
                    on_done(i, outcome);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every case index was claimed by a worker")
        })
        .collect()
}

/// Fold outcomes into per-cell aggregates. Expansion puts seeds
/// innermost, so each cell is one contiguous chunk of `seeds_per_group`
/// outcomes; within a chunk, reports are re-sorted by seed so the fold
/// never depends on axis ordering.
fn fold_groups(outcomes: &[CaseOutcome], seeds_per_group: usize) -> Vec<GroupSummary> {
    outcomes
        .chunks(seeds_per_group.max(1))
        .map(|chunk| {
            let mut by_seed: Vec<&CaseOutcome> = chunk.iter().collect();
            by_seed.sort_by_key(|o| o.case.seed);
            let reports: Vec<FairnessReport> = by_seed.iter().map(|o| o.report.clone()).collect();
            let retention: Vec<f64> = by_seed.iter().map(|o| o.summary.retention).collect();
            // Seeds without a wage distribution contribute nothing — an
            // empty distribution has no statistics, so folding it in
            // (as the old gini-0/jain-1 values) would fabricate
            // perfect-fairness evidence in the cell aggregate.
            let wages: Vec<&WageStats> = by_seed.iter().filter_map(|o| o.wages.as_ref()).collect();
            let wage_of =
                |f: fn(&WageStats) -> f64| -> Vec<f64> { wages.iter().map(|w| f(w)).collect() };
            // Same skip rule as wages: runs without labeling ground
            // truth contribute no consensus score.
            let consensus: Vec<f64> = by_seed.iter().filter_map(|o| o.consensus).collect();
            let first = &chunk[0].case;
            GroupSummary {
                scenario: first.scenario.clone(),
                policy: first.policy_label.clone(),
                strategy: first.strategy_label.clone(),
                scale: first.scale,
                rounds: first.rounds,
                enforce: stack_label(&first.enforcements),
                aggregator: first.aggregator_label.clone(),
                seeds: by_seed.iter().map(|o| o.case.seed).collect(),
                aggregate: ReportAggregate::of(&reports),
                retention: ScoreStats::of(&retention),
                wage_mean: ScoreStats::of(&wage_of(|w| w.mean)),
                wage_gini: ScoreStats::of(&wage_of(|w| w.gini)),
                consensus: ScoreStats::of(&consensus),
            }
        })
        .collect()
}

impl SweepResult {
    /// Render the per-cell aggregates as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new([
            "scenario",
            "policy",
            "strategy",
            "scale",
            "rounds",
            "enforce",
            "aggregator",
            "seeds",
            "fairness",
            "transparency",
            "overall",
            "min..max",
            "violations",
            "retention",
            "wage/h",
            "wage-gini",
            "consensus",
        ])
        .numeric();
        for g in &self.groups {
            // A cell with no wage distribution shows "-", not a
            // fabricated perfectly-fair 0.000; same for a cell with no
            // labeling ground truth to score consensus against.
            let (wage, gini) = if g.wage_mean.n == 0 {
                ("-".to_owned(), "-".to_owned())
            } else {
                (
                    format!("${:.2}", g.wage_mean.mean),
                    format!("{:.3}", g.wage_gini.mean),
                )
            };
            let consensus = if g.consensus.n == 0 {
                "-".to_owned()
            } else {
                format!("{:.3}", g.consensus.mean)
            };
            table.row([
                g.scenario.clone(),
                g.policy.clone(),
                g.strategy.clone(),
                format!("{}", g.scale),
                g.rounds.to_string(),
                g.enforce.clone(),
                g.aggregator.clone(),
                g.seeds.len().to_string(),
                format!("{:.3}", g.aggregate.fairness.mean),
                format!("{:.3}", g.aggregate.transparency.mean),
                format!("{:.3}", g.aggregate.overall.mean),
                format!(
                    "{:.3}..{:.3}",
                    g.aggregate.overall.min, g.aggregate.overall.max
                ),
                g.aggregate.total_violations.to_string(),
                format!("{:.1}%", g.retention.mean * 100.0),
                wage,
                gini,
                consensus,
            ]);
        }
        table.render()
    }

    /// Serialise the aggregates (and per-case rows) as JSON. The output
    /// is a pure function of the grid — the number of worker threads
    /// used never appears — so parallel and serial sweeps are
    /// byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"scenario\": {}, \"policy\": {}, \"strategy\": {}, \"scale\": {}, \
                 \"rounds\": {}, \"enforce\": {}, \"aggregator\": {}, \"seeds\": [{}], \
                 \"runs\": {}, \
                 \"all_hold_runs\": {}, \"total_violations\": {},",
                json_str(&g.scenario),
                json_str(&g.policy),
                json_str(&g.strategy),
                json_f64(g.scale),
                g.rounds,
                json_str(&g.enforce),
                json_str(&g.aggregator),
                g.seeds
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", "),
                g.aggregate.runs,
                g.aggregate.all_hold_runs,
                g.aggregate.total_violations,
            );
            for (label, stats) in [
                ("fairness", &g.aggregate.fairness),
                ("transparency", &g.aggregate.transparency),
                ("overall", &g.aggregate.overall),
                ("retention", &g.retention),
            ] {
                let _ = write!(out, " \"{}\": {},", label, json_stats(stats));
            }
            // `null`, not gini-0/jain-1, for wage-less cells.
            if g.wage_mean.n == 0 {
                out.push_str(" \"wages\": null,");
            } else {
                let _ = write!(
                    out,
                    " \"wages\": {{\"runs\": {}, \"hourly\": {}, \"gini\": {}}},",
                    g.wage_mean.n,
                    json_stats(&g.wage_mean),
                    json_stats(&g.wage_gini),
                );
            }
            // Same rule for cells with no labeling ground truth.
            if g.consensus.n == 0 {
                out.push_str(" \"consensus\": null,");
            } else {
                let _ = write!(
                    out,
                    " \"consensus\": {{\"runs\": {}, \"accuracy\": {}}},",
                    g.consensus.n,
                    json_stats(&g.consensus),
                );
            }
            out.push_str(" \"axioms\": [");
            for (j, a) in g.aggregate.axioms.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"axiom\": {}, \"runs\": {}, \"passes\": {}, \"pass_rate\": {}, \
                     \"score\": {}, \"violations\": {}}}",
                    json_str(a.axiom.label()),
                    a.runs,
                    a.passes,
                    json_f64(a.pass_rate),
                    json_stats(&a.score),
                    a.violations,
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"cases\": [");
        for (i, c) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let wages = match &c.wages {
                None => "null".to_owned(),
                Some(w) => format!(
                    "{{\"n\": {}, \"hourly\": {}, \"gini\": {}, \"jain\": {}}}",
                    w.n,
                    json_f64(w.mean),
                    json_f64(w.gini),
                    json_f64(w.jain)
                ),
            };
            let consensus = match c.consensus {
                None => "null".to_owned(),
                Some(a) => json_f64(a),
            };
            let _ = write!(
                out,
                "\n    {{\"scenario\": {}, \"policy\": {}, \"strategy\": {}, \"seed\": {}, \
                 \"scale\": {}, \"rounds\": {}, \"enforce\": {}, \"aggregator\": {}, \
                 \"fairness\": {}, \
                 \"transparency\": {}, \"overall\": {}, \"violations\": {}, \
                 \"retention\": {}, \"wages\": {}, \"consensus\": {}}}",
                json_str(&c.case.scenario),
                json_str(&c.case.policy_label),
                json_str(&c.case.strategy_label),
                c.case.seed,
                json_f64(c.case.scale),
                c.case.rounds,
                json_str(&stack_label(&c.case.enforcements)),
                json_str(&c.case.aggregator_label),
                json_f64(c.report.fairness_score()),
                json_f64(c.report.transparency_score()),
                json_f64(c.report.overall_score()),
                c.report.total_violations(),
                json_f64(c.summary.retention),
                wages,
                consensus,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serialise the per-cell aggregates as CSV (one row per grid
    /// cell). Deterministic for the same grid regardless of `jobs`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,policy,strategy,scale,rounds,enforce,aggregator,runs,\
             fairness_mean,fairness_min,fairness_max,\
             transparency_mean,transparency_min,transparency_max,\
             overall_mean,overall_min,overall_max,\
             retention_mean,total_violations,all_hold_runs,\
             wage_runs,wage_hourly_mean,wage_gini_mean,\
             consensus_runs,consensus_mean",
        );
        for id in crate::core::AxiomId::ALL {
            let _ = write!(out, ",{}_pass_rate", id.label());
        }
        out.push('\n');
        for g in &self.groups {
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{}",
                csv_field(&g.scenario),
                csv_field(&g.policy),
                csv_field(&g.strategy),
                json_f64(g.scale),
                g.rounds,
                csv_field(&g.enforce),
                csv_field(&g.aggregator),
                g.aggregate.runs,
            );
            for stats in [
                &g.aggregate.fairness,
                &g.aggregate.transparency,
                &g.aggregate.overall,
            ] {
                let _ = write!(
                    out,
                    ",{},{},{}",
                    json_f64(stats.mean),
                    json_f64(stats.min),
                    json_f64(stats.max)
                );
            }
            let _ = write!(
                out,
                ",{},{},{}",
                json_f64(g.retention.mean),
                g.aggregate.total_violations,
                g.aggregate.all_hold_runs
            );
            // Wage columns stay empty (not 0 / 1) when the cell had no
            // wage distribution to measure.
            if g.wage_mean.n == 0 {
                out.push_str(",0,,");
            } else {
                let _ = write!(
                    out,
                    ",{},{},{}",
                    g.wage_mean.n,
                    json_f64(g.wage_mean.mean),
                    json_f64(g.wage_gini.mean)
                );
            }
            // Consensus columns stay empty when no run had labeling
            // ground truth to score against.
            if g.consensus.n == 0 {
                out.push_str(",0,");
            } else {
                let _ = write!(out, ",{},{}", g.consensus.n, json_f64(g.consensus.mean));
            }
            for id in crate::core::AxiomId::ALL {
                match g.aggregate.axiom(id) {
                    Some(a) => {
                        let _ = write!(out, ",{}", json_f64(a.pass_rate));
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// JSON string literal with the escapes our label alphabet can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest round-trip decimal for a float (Rust's `Display`), which is
/// deterministic and therefore safe for byte-identical exports.
fn json_f64(x: f64) -> String {
    if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
        // keep JSON numbers as numbers but make integers explicit floats
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn json_stats(s: &ScoreStats) -> String {
    format!(
        "{{\"mean\": {}, \"min\": {}, \"max\": {}}}",
        json_f64(s.mean),
        json_f64(s.min),
        json_f64(s.max)
    )
}

/// Quote a CSV field only when it needs quoting.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_one_baseline_case() {
        let cases = SweepGrid::default().expand().unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].scenario, "baseline");
        assert_eq!(cases[0].seed, 42);
        assert_eq!(cases[0].rounds, 48);
        assert!(cases[0].policy.is_none());
        assert!(cases[0].enforcements.is_empty());
    }

    #[test]
    fn parse_covers_every_axis() {
        let grid = SweepGrid::parse(
            "policy=round_robin,kos;seed=0..3,11;scenario=baseline;scale=1,2.5;rounds=8;\
             enforce=none,parity+grace,floor:4",
        )
        .unwrap();
        assert_eq!(grid.policies.as_deref().unwrap().len(), 2);
        assert_eq!(grid.seeds.as_deref().unwrap(), &[0, 1, 2, 11]);
        assert_eq!(grid.scales.as_deref().unwrap(), &[1.0, 2.5]);
        assert_eq!(grid.rounds.as_deref().unwrap(), &[8]);
        let stacks = grid.enforcements.as_deref().unwrap();
        assert_eq!(stacks.len(), 3);
        assert!(stacks[0].is_empty());
        assert_eq!(stacks[1].len(), 2);
        assert_eq!(stacks[2], vec![Enforcement::ExposureFloor(4)]);
        // 1 scenario × 2 policies × 2 scales × 1 rounds × 3 stacks × 4 seeds
        assert_eq!(grid.expand().unwrap().len(), 48);
    }

    #[test]
    fn star_expands_to_full_registries() {
        let grid = SweepGrid::parse("policy=*;scenario=*;strategy=*;aggregator=*").unwrap();
        assert_eq!(
            grid.policies.as_deref().unwrap().len(),
            registry::NAMES.len()
        );
        assert_eq!(
            grid.scenarios.as_deref().unwrap().len(),
            catalog::NAMES.len()
        );
        assert_eq!(
            grid.strategies.as_deref().unwrap().len(),
            strategy::NAMES.len()
        );
        assert_eq!(
            grid.aggregators.as_deref().unwrap().len(),
            crate::quality::aggregate::NAMES.len()
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "policy",        // no `=`
            "policy=",       // empty axis
            "seed=x",        // not a number
            "seed=5..5",     // empty range
            "seed=5..=x",    // malformed inclusive bound
            "scale=0",       // non-positive
            "scale=nan",     // non-finite
            "rounds=a",      // not a number
            "enforce=magic", // unknown enforcement
            "orbit=1",       // unknown axis
            "seed=1;seed=2", // duplicate axis
        ] {
            assert!(SweepGrid::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn duplicate_axis_error_names_the_axis() {
        // A duplicated axis used to silently overwrite the earlier
        // entry; the rejection must say *which* axis was repeated.
        let err = SweepGrid::parse("seed=0..4;seed=9").unwrap_err();
        assert!(matches!(err, FaircrowdError::Usage { .. }), "{err:?}");
        assert!(
            err.to_string().contains("grid axis `seed` given twice"),
            "{err}"
        );
        let err = SweepGrid::parse("scale=1;rounds=8;scale=2").unwrap_err();
        assert!(err.to_string().contains("`scale`"), "{err}");
    }

    #[test]
    fn inclusive_seed_ranges_parse() {
        let grid = SweepGrid::parse("seed=0..=3").unwrap();
        assert_eq!(grid.seeds.as_deref().unwrap(), &[0, 1, 2, 3]);
        // A single-point inclusive range is legal (unlike `5..5`)…
        let grid = SweepGrid::parse("seed=5..=5").unwrap();
        assert_eq!(grid.seeds.as_deref().unwrap(), &[5]);
        // …and both forms mix with plain values.
        let grid = SweepGrid::parse("seed=7,0..2,4..=5").unwrap();
        assert_eq!(grid.seeds.as_deref().unwrap(), &[7, 0, 1, 4, 5]);
    }

    #[test]
    fn reversed_seed_ranges_get_a_precise_error() {
        // `5..3` used to fall through to the generic "empty seed range"
        // message; a reversed range is a typo and must say so.
        let err = SweepGrid::parse("seed=5..3").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("reversed seed range `5..3`"), "{text}");
        assert!(text.contains("3..5"), "{text}");
        let err = SweepGrid::parse("seed=9..=2").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("reversed seed range `9..=2`"), "{text}");
        assert!(text.contains("2..=9"), "{text}");
    }

    #[test]
    fn expand_validates_names_up_front() {
        let grid = SweepGrid::parse("scenario=atlantis").unwrap();
        assert!(matches!(
            grid.expand(),
            Err(FaircrowdError::UnknownScenario { .. })
        ));
        let grid = SweepGrid::parse("policy=magic").unwrap();
        assert!(matches!(
            grid.expand(),
            Err(FaircrowdError::UnknownPolicy { .. })
        ));
        let grid = SweepGrid::parse("strategy=chaos_monkey").unwrap();
        assert!(matches!(
            grid.expand(),
            Err(FaircrowdError::UnknownStrategy { .. })
        ));
        let grid = SweepGrid::parse("aggregator=median").unwrap();
        assert!(matches!(
            grid.expand(),
            Err(FaircrowdError::UnknownAggregator { .. })
        ));
    }

    #[test]
    fn aggregator_axis_expands_between_enforce_and_seeds() {
        let grid = SweepGrid::parse(
            "rounds=6;enforce=none,grace;aggregator=majority,parity_constrained;seed=1,2",
        )
        .unwrap();
        let cases = grid.expand().unwrap();
        // 2 stacks × 2 aggregators × 2 seeds, seeds innermost.
        assert_eq!(cases.len(), 8);
        assert_eq!(cases[0].aggregator_label, "majority");
        assert_eq!(cases[0].seed, 1);
        assert_eq!(cases[1].seed, 2);
        assert_eq!(cases[2].aggregator.as_deref(), Some("parity_constrained"));
        assert_eq!(cases[2].aggregator_label, "parity-constrained");
        assert!(cases[3].enforcements.is_empty());
        assert_eq!(cases[4].enforcements.len(), 1, "stack outside aggregator");
    }

    #[test]
    fn aggregator_axis_shares_the_simulation_key() {
        // Cells differing only on the aggregator rescore one trace:
        // they must share a sim-cache slot (the axis is post-sim).
        let grid = SweepGrid::parse("rounds=6;aggregator=majority,weighted_majority").unwrap();
        let cases = grid.expand().unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].sim_key(), cases[1].sim_key());
    }

    #[test]
    fn aggregator_axis_scores_consensus_per_cell() {
        let grid = SweepGrid::parse(
            "scenario=baseline;rounds=8;aggregator=majority,weighted_majority,parity_constrained",
        )
        .unwrap();
        let result = run_grid(&grid, 2).unwrap();
        assert_eq!(result.groups.len(), 3);
        for g in &result.groups {
            assert_eq!(g.consensus.n, 1, "baseline has labeling ground truth");
            assert!(
                (0.0..=1.0).contains(&g.consensus.mean),
                "{}",
                g.consensus.mean
            );
        }
        assert_eq!(result.groups[0].aggregator, "majority");
        assert_eq!(result.groups[2].aggregator, "parity-constrained");
        // Exports carry the axis.
        assert!(result
            .to_json()
            .contains("\"aggregator\": \"weighted-majority\""));
        assert!(result
            .to_csv()
            .starts_with("scenario,policy,strategy,scale,rounds,enforce,aggregator,"));
        assert!(result.render_table().contains("parity-constrained"));
        // The cached sweep equals the uncached one with the axis too.
        let uncached = run_grid_opts(&grid, 1, false).unwrap();
        assert_eq!(result.to_json(), uncached.to_json());
    }

    #[test]
    fn strategy_axis_expands_and_defaults_to_the_scenario() {
        // No strategy axis: legacy scenarios keep `static`, strategic
        // scenarios keep their own profile.
        let cases = SweepGrid::parse("scenario=baseline,super_turkers;rounds=6")
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(cases.len(), 2);
        assert!(cases[0].strategy.is_none());
        assert_eq!(cases[0].strategy_label, "static");
        assert_eq!(cases[1].strategy_label, "super_turker");
        // Explicit axis: every value overrides, nested outside scale.
        let cases = SweepGrid::parse("strategy=static,price_undercut;scale=1,2")
            .unwrap()
            .expand()
            .unwrap();
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].strategy.as_deref(), Some("static"));
        assert_eq!(cases[2].strategy.as_deref(), Some("price_undercut"));
        assert_eq!(cases[2].strategy_label, "price_undercut");
    }

    #[test]
    fn strategy_axis_runs_converged_cells() {
        // A strategic override on a legacy scenario converges inside the
        // sweep and differs from the static cell, while the static cell
        // matches a plain (axis-free) sweep bit-for-bit.
        let grid =
            SweepGrid::parse("scenario=baseline;rounds=8;strategy=static,super_turker").unwrap();
        let result = run_grid(&grid, 2).unwrap();
        assert_eq!(result.groups.len(), 2);
        assert_eq!(result.groups[0].strategy, "static");
        assert_eq!(result.groups[1].strategy, "super_turker");
        let plain = run_grid(&SweepGrid::parse("scenario=baseline;rounds=8").unwrap(), 1).unwrap();
        assert_eq!(
            result.cases[0].report.overall_score(),
            plain.cases[0].report.overall_score(),
            "static override is the plain run"
        );
        assert!(result.to_json().contains("\"strategy\": \"super_turker\""));
        assert!(result.to_csv().starts_with("scenario,policy,strategy,"));
    }

    #[test]
    fn grid_runs_and_groups_across_seeds() {
        let grid =
            SweepGrid::parse("policy=self_selection,round_robin;seed=1,2,3;rounds=6").unwrap();
        let result = run_grid(&grid, 2).unwrap();
        assert_eq!(result.cases.len(), 6);
        assert_eq!(result.groups.len(), 2);
        for g in &result.groups {
            assert_eq!(g.seeds, vec![1, 2, 3]);
            assert_eq!(g.aggregate.runs, 3);
        }
        let table = result.render_table();
        assert!(table.contains("self-selection"));
        assert!(table.contains("round-robin"));
    }

    #[test]
    fn exports_are_wellformed() {
        let grid = SweepGrid::parse("seed=1,2;rounds=6").unwrap();
        let result = run_grid(&grid, 1).unwrap();
        let json = result.to_json();
        assert!(json.contains("\"groups\""));
        assert!(json.contains("\"cases\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let csv = result.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2, "header + one group");
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "csv arity"
        );
    }

    #[test]
    fn cached_and_uncached_sweeps_are_byte_identical() {
        // The simulation cache (cells differing only on `enforce` share
        // one baseline trace) must change wall-clock and nothing else —
        // across different job counts too.
        let grid =
            SweepGrid::parse("scenario=baseline;rounds=8;seed=1,2;enforce=none,grace,parity")
                .unwrap();
        let cached = run_grid_opts(&grid, 3, true).unwrap();
        let uncached = run_grid_opts(&grid, 2, false).unwrap();
        assert_eq!(cached.to_json(), uncached.to_json());
        assert_eq!(cached.to_csv(), uncached.to_csv());
        assert_eq!(cached.render_table(), uncached.render_table());
    }

    #[test]
    fn sweep_cells_carry_wage_statistics() {
        let grid = SweepGrid::parse("scenario=baseline;rounds=8;seed=1,2").unwrap();
        let result = run_grid(&grid, 2).unwrap();
        let g = &result.groups[0];
        assert_eq!(g.wage_mean.n, 2, "both seeds pay wages in baseline");
        assert!(g.wage_mean.mean > 0.0);
        assert!((0.0..=1.0).contains(&g.wage_gini.mean));
        assert!(result.to_json().contains("\"wages\": {"));
    }

    #[test]
    fn zero_wage_cells_fold_without_fabricated_fairness() {
        // Regression for the WageStats empty-distribution bug: a grid
        // cell whose runs paid for no invested time must export
        // null/empty wage columns — never the old gini-0/jain-1
        // "perfect fairness" — and mixed cells must fold only the seeds
        // that actually had wages.
        use crate::model::Credits;
        let case = |seed: u64| SweepCase {
            scenario: "baseline".into(),
            policy: None,
            policy_label: "self-selection".into(),
            strategy: None,
            strategy_label: "static".into(),
            seed,
            scale: 1.0,
            rounds: 8,
            enforcements: Vec::new(),
            aggregator: None,
            aggregator_label: "majority".into(),
        };
        let empty_trace = crate::model::Trace::default();
        let report = crate::core::AuditEngine::with_defaults().run(&empty_trace);
        let outcome = |seed, wages| CaseOutcome {
            case: case(seed),
            report: report.clone(),
            summary: TraceSummary::of(&empty_trace),
            wages,
            consensus: None,
        };
        let paid =
            WageStats::from_wages(&[Credits::from_dollars(2), Credits::from_dollars(6)]).unwrap();
        // Cell 1: one wage-less seed among two. Cell 2: fully wage-less.
        let outcomes = vec![
            outcome(1, Some(paid)),
            outcome(2, None),
            outcome(3, None),
            outcome(4, None),
        ];
        let groups = fold_groups(&outcomes, 2);
        assert_eq!(groups.len(), 2);
        let mixed = &groups[0];
        assert_eq!(mixed.wage_mean.n, 1, "only the paid seed is folded");
        assert!((mixed.wage_mean.mean - paid.mean).abs() < 1e-12);
        assert!((mixed.wage_gini.mean - paid.gini).abs() < 1e-12);
        let wageless = &groups[1];
        assert_eq!(wageless.wage_mean.n, 0);
        let result = SweepResult {
            cases: outcomes,
            groups,
        };
        let json = result.to_json();
        assert!(
            json.contains("\"wages\": null"),
            "wage-less cell must export null: {json}"
        );
        let csv = result.to_csv();
        let wageless_row = csv.lines().nth(2).unwrap();
        assert!(
            wageless_row.contains(",0,,"),
            "wage columns must stay empty, got: {wageless_row}"
        );
        let table = result.render_table();
        assert!(table.contains('-'), "table shows '-' for missing wages");
    }

    #[test]
    fn enforcement_axis_changes_outcomes() {
        let grid =
            SweepGrid::parse("scenario=worker_churn;rounds=12;enforce=none,transparency").unwrap();
        let result = run_grid(&grid, 2).unwrap();
        assert_eq!(result.groups.len(), 2);
        let none = &result.groups[0];
        let repaired = &result.groups[1];
        assert!(
            repaired.aggregate.transparency.mean >= none.aggregate.transparency.mean,
            "minimal-transparency repair should not lower the transparency score"
        );
    }
}
