//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically, so this shim re-implements the
//! subset of proptest's API its property tests use: the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`/`prop_shuffle`/`boxed`,
//! numeric-range and string-pattern strategies, [`collection::vec`],
//! [`bool::ANY`], [`sample::select`], [`option::of`], [`prop_oneof!`],
//! `Just`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test runs `ProptestConfig::cases` randomised cases
//! from a generator seeded deterministically by the test's name, so runs
//! are reproducible. There is no shrinking — a failing case panics with
//! the generated inputs' debug representation via the assertion message.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// The any-boolean strategy.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A half-open size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy: length drawn from `size`, elements from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit option sets.
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Choose uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options.choose(rng).expect("non-empty").clone()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding `None` or a generated `Some`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `None` half the time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `prop::…` namespace alias, as in upstream proptest's prelude.
pub mod prop {
    pub use crate::{bool, collection, option, sample};
}

/// The items property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert inside a property; panics (no shrinking) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property; panics (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Choose uniformly among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` randomised, reproducible cases.
#[macro_export]
macro_rules! proptest {
    (@funcs $cfg:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr;) => {};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = rng_for("shim-smoke");
        let strat = (0u32..5, -3i64..3, 0.0f64..1.0).prop_map(|(a, b, c)| (a, b, c));
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 5);
            assert!((-3..3).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn collection_vec_and_shuffle_preserve_elements() {
        let mut rng = rng_for("shim-vec");
        let strat = prop::collection::vec(0u8..10, 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let shuffled = Just((0..10u16).collect::<Vec<u16>>()).prop_shuffle();
        let mut v = shuffled.generate(&mut rng);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn oneof_select_option_and_str_patterns() {
        let mut rng = rng_for("shim-misc");
        let u = prop_oneof![Just(1u8), Just(2), 5u8..7];
        let sel = prop::sample::select(vec!["a", "b"]);
        let opt = prop::option::of(0u8..3);
        let pat = ".{0,8}";
        let mut saw_none = false;
        let mut saw_some = false;
        for _ in 0..200 {
            let x = u.generate(&mut rng);
            assert!([1, 2, 5, 6].contains(&x));
            assert!(["a", "b"].contains(&sel.generate(&mut rng)));
            match opt.generate(&mut rng) {
                None => saw_none = true,
                Some(v) => {
                    saw_some = true;
                    assert!(v < 3);
                }
            }
            let s = Strategy::generate(&pat, &mut rng);
            assert!(s.chars().count() <= 8);
        }
        assert!(saw_none && saw_some);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..10, ys in prop::collection::vec(0u8..4, 0..5)) {
            prop_assert!(x < 10);
            prop_assert!(ys.len() < 5);
            prop_assert!(ys.iter().all(|&y| y < 4));
        }
    }
}
