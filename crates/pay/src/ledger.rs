//! The payment ledger.
//!
//! Every monetary movement on the platform flows through an append-only
//! ledger: escrowed task rewards, payments, bonuses, and the approval
//! pipeline with its auto-approval deadline (the "time until automatic
//! approval" that worker-made scripts disclose on AMT, per §2.2). The
//! ledger is exact integer money and conserves value by construction —
//! the property test in this module is the accountant.

use faircrowd_model::ids::{RequesterId, SubmissionId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One ledger movement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LedgerEntry {
    /// A requester funded a payment to a worker for a submission.
    Payment {
        /// Paying requester.
        requester: RequesterId,
        /// Paid worker.
        worker: WorkerId,
        /// The paid submission.
        submission: SubmissionId,
        /// Amount.
        amount: Credits,
        /// When.
        time: SimTime,
    },
    /// A bonus payment outside the per-submission flow.
    Bonus {
        /// Paying requester.
        requester: RequesterId,
        /// Paid worker.
        worker: WorkerId,
        /// Amount.
        amount: Credits,
        /// When.
        time: SimTime,
    },
}

impl LedgerEntry {
    /// The amount moved.
    pub fn amount(&self) -> Credits {
        match self {
            LedgerEntry::Payment { amount, .. } | LedgerEntry::Bonus { amount, .. } => *amount,
        }
    }
}

/// A submission awaiting an approval decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingDecision {
    /// The submission.
    pub submission: SubmissionId,
    /// Who submitted.
    pub worker: WorkerId,
    /// Which requester owes the decision.
    pub requester: RequesterId,
    /// When the work arrived.
    pub submitted_at: SimTime,
    /// When the platform will auto-approve absent a decision.
    pub auto_approve_at: SimTime,
}

/// Append-only payment ledger with an approval pipeline.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
    pending: BTreeMap<SubmissionId, PendingDecision>,
    worker_balance: BTreeMap<WorkerId, Credits>,
    requester_spend: BTreeMap<RequesterId, Credits>,
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter a submission into the approval pipeline.
    pub fn submit(
        &mut self,
        submission: SubmissionId,
        worker: WorkerId,
        requester: RequesterId,
        submitted_at: SimTime,
        auto_approve_after: SimDuration,
    ) {
        let prior = self.pending.insert(
            submission,
            PendingDecision {
                submission,
                worker,
                requester,
                submitted_at,
                auto_approve_at: submitted_at + auto_approve_after,
            },
        );
        debug_assert!(prior.is_none(), "submission {submission} entered twice");
    }

    /// Resolve a pending decision (approve or reject), returning the
    /// pending record. Paying is a separate step so rejected work can
    /// still be compensated by enforcement middleware.
    pub fn resolve(&mut self, submission: SubmissionId) -> Option<PendingDecision> {
        self.pending.remove(&submission)
    }

    /// Submissions whose auto-approval deadline has passed at `now`.
    pub fn due_auto_approvals(&self, now: SimTime) -> Vec<PendingDecision> {
        self.pending
            .values()
            .filter(|p| p.auto_approve_at <= now)
            .copied()
            .collect()
    }

    /// Pending decisions, oldest first.
    pub fn pending(&self) -> Vec<PendingDecision> {
        let mut v: Vec<PendingDecision> = self.pending.values().copied().collect();
        v.sort_by_key(|p| (p.submitted_at, p.submission));
        v
    }

    /// Record a payment for a submission.
    pub fn pay(
        &mut self,
        requester: RequesterId,
        worker: WorkerId,
        submission: SubmissionId,
        amount: Credits,
        time: SimTime,
    ) {
        debug_assert!(!amount.is_zero() || amount == Credits::ZERO);
        assert!(
            amount.millicents() >= 0,
            "payments cannot be negative: {amount}"
        );
        if amount.is_zero() {
            return; // zero payments carry no information and no money
        }
        self.entries.push(LedgerEntry::Payment {
            requester,
            worker,
            submission,
            amount,
            time,
        });
        *self.worker_balance.entry(worker).or_insert(Credits::ZERO) += amount;
        *self
            .requester_spend
            .entry(requester)
            .or_insert(Credits::ZERO) += amount;
    }

    /// Record a bonus payment.
    pub fn pay_bonus(
        &mut self,
        requester: RequesterId,
        worker: WorkerId,
        amount: Credits,
        time: SimTime,
    ) {
        assert!(amount.millicents() >= 0, "bonuses cannot be negative");
        if amount.is_zero() {
            return;
        }
        self.entries.push(LedgerEntry::Bonus {
            requester,
            worker,
            amount,
            time,
        });
        *self.worker_balance.entry(worker).or_insert(Credits::ZERO) += amount;
        *self
            .requester_spend
            .entry(requester)
            .or_insert(Credits::ZERO) += amount;
    }

    /// A worker's total earnings.
    pub fn balance(&self, worker: WorkerId) -> Credits {
        self.worker_balance
            .get(&worker)
            .copied()
            .unwrap_or(Credits::ZERO)
    }

    /// A requester's total spend.
    pub fn spend(&self, requester: RequesterId) -> Credits {
        self.requester_spend
            .get(&requester)
            .copied()
            .unwrap_or(Credits::ZERO)
    }

    /// All entries in order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Earnings per worker (all workers that ever earned).
    pub fn worker_balances(&self) -> &BTreeMap<WorkerId, Credits> {
        &self.worker_balance
    }

    /// Conservation invariant: total worker earnings equal total requester
    /// spend equal the sum of entries. A violation means the ledger code
    /// itself is broken — callers may assert on this after any batch.
    pub fn conserves(&self) -> bool {
        let entry_total: Credits = self.entries.iter().map(|e| e.amount()).sum();
        let worker_total: Credits = self.worker_balance.values().copied().sum();
        let requester_total: Credits = self.requester_spend.values().copied().sum();
        entry_total == worker_total && worker_total == requester_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn r(i: u32) -> RequesterId {
        RequesterId::new(i)
    }
    fn s(i: u32) -> SubmissionId {
        SubmissionId::new(i)
    }

    #[test]
    fn submit_resolve_pipeline() {
        let mut l = Ledger::new();
        l.submit(
            s(0),
            w(0),
            r(0),
            SimTime::from_secs(100),
            SimDuration::from_hours(1),
        );
        assert_eq!(l.pending().len(), 1);
        assert!(l.due_auto_approvals(SimTime::from_secs(200)).is_empty());
        let due = l.due_auto_approvals(SimTime::from_secs(100 + 3600));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].submission, s(0));
        let p = l.resolve(s(0)).unwrap();
        assert_eq!(p.worker, w(0));
        assert!(l.resolve(s(0)).is_none(), "already resolved");
        assert!(l.pending().is_empty());
    }

    #[test]
    fn payments_update_balances() {
        let mut l = Ledger::new();
        l.pay(r(0), w(0), s(0), Credits::from_cents(10), SimTime::ZERO);
        l.pay(r(0), w(1), s(1), Credits::from_cents(5), SimTime::ZERO);
        l.pay_bonus(r(1), w(0), Credits::from_cents(3), SimTime::ZERO);
        assert_eq!(l.balance(w(0)), Credits::from_cents(13));
        assert_eq!(l.balance(w(1)), Credits::from_cents(5));
        assert_eq!(l.spend(r(0)), Credits::from_cents(15));
        assert_eq!(l.spend(r(1)), Credits::from_cents(3));
        assert_eq!(l.entries().len(), 3);
        assert!(l.conserves());
    }

    #[test]
    fn zero_payments_are_dropped() {
        let mut l = Ledger::new();
        l.pay(r(0), w(0), s(0), Credits::ZERO, SimTime::ZERO);
        l.pay_bonus(r(0), w(0), Credits::ZERO, SimTime::ZERO);
        assert!(l.entries().is_empty());
        assert_eq!(l.balance(w(0)), Credits::ZERO);
        assert!(l.conserves());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_payment_rejected() {
        let mut l = Ledger::new();
        l.pay(r(0), w(0), s(0), Credits::from_cents(-5), SimTime::ZERO);
    }

    #[test]
    fn pending_sorted_by_submission_time() {
        let mut l = Ledger::new();
        l.submit(
            s(1),
            w(1),
            r(0),
            SimTime::from_secs(50),
            SimDuration::from_hours(1),
        );
        l.submit(
            s(0),
            w(0),
            r(0),
            SimTime::from_secs(10),
            SimDuration::from_hours(1),
        );
        let pend = l.pending();
        assert_eq!(pend[0].submission, s(0));
        assert_eq!(pend[1].submission, s(1));
    }

    #[test]
    fn unknown_ids_have_zero_balance() {
        let l = Ledger::new();
        assert_eq!(l.balance(w(9)), Credits::ZERO);
        assert_eq!(l.spend(r(9)), Credits::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Conservation holds for any sequence of payments/bonuses.
        #[test]
        fn ledger_always_conserves(
            ops in proptest::collection::vec(
                (0u32..5, 0u32..5, 0u32..100, 0i64..10_000, proptest::bool::ANY),
                0..200,
            )
        ) {
            let mut l = Ledger::new();
            for (req, wkr, sub, amount, is_bonus) in ops {
                let amount = Credits::from_millicents(amount);
                if is_bonus {
                    l.pay_bonus(RequesterId::new(req), WorkerId::new(wkr), amount, SimTime::ZERO);
                } else {
                    l.pay(
                        RequesterId::new(req),
                        WorkerId::new(wkr),
                        SubmissionId::new(sub),
                        amount,
                        SimTime::ZERO,
                    );
                }
                prop_assert!(l.conserves());
            }
        }

        /// Worker balances are exactly the sum of their own entries.
        #[test]
        fn balances_match_entry_sums(
            ops in proptest::collection::vec((0u32..4, 1i64..5_000), 1..100)
        ) {
            let mut l = Ledger::new();
            for (i, (wkr, amount)) in ops.iter().enumerate() {
                l.pay(
                    RequesterId::new(0),
                    WorkerId::new(*wkr),
                    SubmissionId::new(i as u32),
                    Credits::from_millicents(*amount),
                    SimTime::ZERO,
                );
            }
            for wkr in 0u32..4 {
                let expect: i64 = ops
                    .iter()
                    .filter(|(w, _)| *w == wkr)
                    .map(|(_, a)| *a)
                    .sum();
                prop_assert_eq!(l.balance(WorkerId::new(wkr)).millicents(), expect);
            }
        }
    }
}
