//! Simulator invariants under randomised configurations: whatever the
//! scenario, traces must be well-formed, money must add up, and the
//! behavioural knobs must move their outcomes in the documented
//! direction.

use faircrowd_model::event::EventKind;
use faircrowd_model::money::Credits;
use faircrowd_quality::spam::WorkerArchetype;
use faircrowd_sim::{
    ApprovalPolicy, CampaignSpec, CancellationPolicy, PolicyChoice, ScenarioConfig, Simulation,
    TraceSummary, WorkerPopulation,
};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = PolicyChoice> {
    prop_oneof![
        Just(PolicyChoice::SelfSelection),
        Just(PolicyChoice::RoundRobin),
        Just(PolicyChoice::RequesterCentric),
        Just(PolicyChoice::OnlineGreedy),
        Just(PolicyChoice::Kos { l: 2, r: 4 }),
        Just(PolicyChoice::ParityOver(Box::new(
            PolicyChoice::RequesterCentric
        ))),
    ]
}

fn any_cancellation() -> impl Strategy<Value = CancellationPolicy> {
    prop_oneof![
        Just(CancellationPolicy::RunToCompletion),
        Just(CancellationPolicy::CancelAtTarget {
            compensate_partial: false
        }),
        Just(CancellationPolicy::CancelAtTarget {
            compensate_partial: true
        }),
        Just(CancellationPolicy::GraceFinish),
    ]
}

fn random_config() -> impl Strategy<Value = ScenarioConfig> {
    (
        0u64..1_000, // seed
        4u32..20,    // rounds
        2u32..12,    // diligent workers
        0u32..5,     // spammers
        3u32..20,    // tasks
        any_policy(),
        any_cancellation(),
        prop::option::of(5u32..40), // target
    )
        .prop_map(
            |(seed, rounds, diligent, spam, tasks, policy, cancellation, target)| ScenarioConfig {
                seed,
                rounds,
                n_skills: 3,
                workers: vec![
                    WorkerPopulation::diligent(diligent),
                    WorkerPopulation::of(WorkerArchetype::RandomSpammer, spam),
                ],
                campaigns: vec![CampaignSpec {
                    target_approved: target,
                    ..CampaignSpec::labeling("acme", tasks, 9)
                }],
                policy,
                cancellation,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Whatever the configuration: valid trace, monotone event clock,
    /// non-negative earnings that sum to the total payout.
    #[test]
    fn any_scenario_produces_consistent_books(cfg in random_config()) {
        let trace = Simulation::new(cfg).run();
        prop_assert!(trace.validate().is_empty(), "{:?}", trace.validate());
        prop_assert!(trace.events.check_integrity().is_ok());
        let earnings = trace.earnings_by_worker();
        let total: Credits = earnings.values().copied().sum();
        let payout: Credits = trace
            .events
            .iter()
            .map(|e| match &e.kind {
                EventKind::PaymentIssued { amount, .. }
                | EventKind::BonusPaid { amount, .. } => *amount,
                _ => Credits::ZERO,
            })
            .sum();
        prop_assert_eq!(total, payout);
        prop_assert!(earnings.values().all(|c| c.millicents() >= 0));
        // a worker never earns without having done anything (submission
        // or a compensated interruption)
        for (w, earned) in &earnings {
            if earned.is_positive() {
                let touched_work = trace.submissions.iter().any(|s| s.worker == *w)
                    || trace.events.iter().any(|e| {
                        matches!(e.kind, EventKind::WorkInterrupted { worker, .. } if worker == *w)
                    });
                prop_assert!(touched_work, "{w} earned {earned} from thin air");
            }
        }
    }

    /// Grace-finish never emits an interruption, under any configuration.
    #[test]
    fn grace_finish_never_interrupts(cfg in random_config()) {
        let cfg = ScenarioConfig {
            cancellation: CancellationPolicy::GraceFinish,
            ..cfg
        };
        let trace = Simulation::new(cfg).run();
        let interruptions = trace
            .events
            .count_where(|k| matches!(k, EventKind::WorkInterrupted { .. }));
        prop_assert_eq!(interruptions, 0);
    }

    /// Raising the wrongful-rejection probability can only lower the
    /// realised approval rate (same seed, same market).
    #[test]
    fn rejection_knob_is_monotone(seed in 0u64..200) {
        let build = |p: f64| ScenarioConfig {
            seed,
            rounds: 12,
            workers: vec![WorkerPopulation::diligent(8)],
            campaigns: vec![CampaignSpec::labeling("acme", 12, 9)],
            approval: ApprovalPolicy::RandomReject {
                reject_prob: p,
                give_feedback: true,
            },
            ..Default::default()
        };
        let gentle = TraceSummary::of(&Simulation::new(build(0.05)).run());
        let harsh = TraceSummary::of(&Simulation::new(build(0.7)).run());
        prop_assert!(
            harsh.approval_rate <= gentle.approval_rate + 0.05,
            "p=.7 approved {:.2} vs p=.05 approved {:.2}",
            harsh.approval_rate,
            gentle.approval_rate
        );
    }
}

#[test]
fn spam_fraction_degrades_label_quality() {
    // deterministic two-point check across seeds (not a proptest: needs
    // the averaged contrast, not per-seed noise)
    let build = |seed: u64, spammers: u32| ScenarioConfig {
        seed,
        rounds: 16,
        n_skills: 0,
        workers: vec![
            WorkerPopulation::diligent(12),
            WorkerPopulation::of(WorkerArchetype::RandomSpammer, spammers),
        ],
        campaigns: vec![CampaignSpec {
            assignments_per_task: 4,
            ..CampaignSpec::labeling("acme", 30, 9)
        }],
        ..Default::default()
    };
    let mean = |spammers: u32| -> f64 {
        (0..4)
            .map(|seed| {
                TraceSummary::of(&Simulation::new(build(seed, spammers)).run()).label_quality
            })
            .sum::<f64>()
            / 4.0
    };
    let clean = mean(0);
    let spammy = mean(10);
    assert!(
        spammy < clean - 0.05,
        "10 random spammers must dent label quality: {clean:.3} -> {spammy:.3}"
    );
}
