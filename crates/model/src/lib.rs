//! # faircrowd-model
//!
//! Shared data model for the FairCrowd workspace — a faithful Rust rendering
//! of the formal model in §3.2 of *"Fairness and Transparency in
//! Crowdsourcing"* (Borromeo, Laurent, Toyama, Amer-Yahia; EDBT 2017):
//!
//! * a set of **tasks** `T = {t1, …, tn}` where each task is a tuple
//!   `(id_t, id_r, S_t, d_t)` — identifier, requester, required-skill vector
//!   and reward ([`Task`]);
//! * a set of **workers** `W = {w1, …, wp}` where each worker is a tuple
//!   `(id_w, A_w, C_w, S_w)` — identifier, self-declared attributes,
//!   platform-computed attributes and skill vector ([`Worker`]);
//! * a set of **skill keywords** `S = {s1, …, sm}` ([`skills::SkillUniverse`]).
//!
//! On top of the paper's tuples, this crate provides everything the axioms
//! quantify over: the audit-log [`event`] vocabulary, [`Contribution`]s with
//! the paper's suggested similarity measures (n-grams for text [Damashek 95],
//! DCG for ranked lists [Järvelin–Kekäläinen 02]), fixed-point [`money`],
//! deterministic [`time`], disclosure items for the transparency axioms, and
//! the [`trace::Trace`] type that the simulator produces and the audit
//! engine consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod attributes;
pub mod contribution;
pub mod disclosure;
pub mod error;
pub mod event;
pub mod ids;
pub mod json;
pub mod money;
pub mod names;
pub mod ranking;
pub mod requester;
pub mod similarity;
pub mod skills;
pub mod stats;
pub mod task;
pub mod text;
pub mod time;
pub mod trace;
pub mod trace_bin;
pub mod trace_io;
pub mod worker;

pub use attributes::{AttrValue, ComputedAttrs, DeclaredAttrs};
pub use contribution::{Contribution, Submission};
pub use disclosure::{Audience, DisclosureItem, DisclosureSet};
pub use error::FaircrowdError;
pub use event::{Event, EventKind, EventLog};
pub use ids::{CampaignId, RequesterId, SkillId, SubmissionId, TaskId, WorkerId};
pub use money::Credits;
pub use requester::Requester;
pub use skills::{SkillUniverse, SkillVector};
pub use task::{Task, TaskKind};
pub use time::{SimDuration, SimTime};
pub use trace::Trace;
pub use worker::Worker;

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::attributes::{AttrValue, ComputedAttrs, DeclaredAttrs};
    pub use crate::contribution::{Contribution, Submission};
    pub use crate::disclosure::{Audience, DisclosureItem, DisclosureSet};
    pub use crate::error::FaircrowdError;
    pub use crate::event::{Event, EventKind, EventLog};
    pub use crate::ids::*;
    pub use crate::money::Credits;
    pub use crate::requester::Requester;
    pub use crate::skills::{SkillUniverse, SkillVector};
    pub use crate::task::{Task, TaskKind};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::Trace;
    pub use crate::worker::Worker;
}
