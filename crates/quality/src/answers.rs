//! The answer matrix.
//!
//! Every truth-inference and detection algorithm in this crate consumes the
//! same sparse worker×task label matrix. Labels are small categorical
//! values (`u8`), matching [`faircrowd_model::Contribution::Label`].

use faircrowd_model::ids::{TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One worker's label for one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answer {
    /// The answering worker.
    pub worker: WorkerId,
    /// The answered task.
    pub task: TaskId,
    /// The categorical label given.
    pub label: u8,
}

/// A sparse worker×task answer matrix over `classes` label classes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnswerSet {
    classes: u8,
    answers: Vec<Answer>,
}

impl AnswerSet {
    /// An empty set over `classes` label classes (must be ≥ 2 to carry
    /// any information).
    pub fn new(classes: u8) -> Self {
        assert!(classes >= 2, "need at least two label classes");
        AnswerSet {
            classes,
            answers: Vec::new(),
        }
    }

    /// Number of label classes.
    pub fn classes(&self) -> u8 {
        self.classes
    }

    /// Record an answer. Panics when the label is out of range — the
    /// caller constructed an impossible answer.
    pub fn record(&mut self, worker: WorkerId, task: TaskId, label: u8) {
        assert!(label < self.classes, "label {label} out of range");
        self.answers.push(Answer {
            worker,
            task,
            label,
        });
    }

    /// All answers in insertion order.
    pub fn answers(&self) -> &[Answer] {
        &self.answers
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when no answers are recorded.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Answers grouped by task (task order is deterministic).
    pub fn by_task(&self) -> BTreeMap<TaskId, Vec<Answer>> {
        let mut map: BTreeMap<TaskId, Vec<Answer>> = BTreeMap::new();
        for &a in &self.answers {
            map.entry(a.task).or_default().push(a);
        }
        map
    }

    /// Answers grouped by worker.
    pub fn by_worker(&self) -> BTreeMap<WorkerId, Vec<Answer>> {
        let mut map: BTreeMap<WorkerId, Vec<Answer>> = BTreeMap::new();
        for &a in &self.answers {
            map.entry(a.worker).or_default().push(a);
        }
        map
    }

    /// Distinct tasks answered, ascending.
    pub fn tasks(&self) -> Vec<TaskId> {
        self.by_task().into_keys().collect()
    }

    /// Distinct workers who answered, ascending.
    pub fn workers(&self) -> Vec<WorkerId> {
        self.by_worker().into_keys().collect()
    }

    /// Per-task label histograms: `hist[task][label] = count`.
    pub fn task_histograms(&self) -> BTreeMap<TaskId, Vec<u32>> {
        let mut map: BTreeMap<TaskId, Vec<u32>> = BTreeMap::new();
        for &a in &self.answers {
            let hist = map
                .entry(a.task)
                .or_insert_with(|| vec![0; self.classes as usize]);
            hist[a.label as usize] += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WorkerId {
        WorkerId::new(i)
    }
    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn record_and_group() {
        let mut s = AnswerSet::new(3);
        s.record(w(0), t(0), 1);
        s.record(w(1), t(0), 1);
        s.record(w(0), t(1), 2);
        assert_eq!(s.len(), 3);
        assert_eq!(s.classes(), 3);
        assert_eq!(s.by_task()[&t(0)].len(), 2);
        assert_eq!(s.by_worker()[&w(0)].len(), 2);
        assert_eq!(s.tasks(), vec![t(0), t(1)]);
        assert_eq!(s.workers(), vec![w(0), w(1)]);
    }

    #[test]
    fn histograms_count_labels() {
        let mut s = AnswerSet::new(2);
        s.record(w(0), t(0), 0);
        s.record(w(1), t(0), 1);
        s.record(w(2), t(0), 1);
        let h = s.task_histograms();
        assert_eq!(h[&t(0)], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let mut s = AnswerSet::new(2);
        s.record(w(0), t(0), 5);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_class_rejected() {
        let _ = AnswerSet::new(1);
    }
}
