//! E5 — The transparency language across platforms.
//!
//! Paper source: §3.3.2 ("declarative high-level language … rules can be
//! translated into human-readable descriptions … easy comparison across
//! platforms"), §1/§2.2 (the platform and plug-in landscape the catalog
//! encodes), Axioms 6–7.
//!
//! Table 1: per catalog policy — rule counts, effective grants, Axiom-6/7
//! coverage, rendered description length, and parse+compile time.
//! Table 2: the pairwise grant-similarity matrix (the cross-platform
//! comparison the paper calls for).

use faircrowd_bench::{banner, f2, f3, TextTable};
use faircrowd_lang::{catalog, compare, compile, render};
use std::time::Instant;

fn main() {
    banner(
        "E5",
        "transparency policies across platforms",
        "paper §3.3.2 declarative language; Axioms 6-7",
    );

    let sources = catalog::sources();
    let policies: Vec<_> = sources
        .iter()
        .map(|(_, src)| faircrowd_lang::compile_one(src).expect("catalog compiles"))
        .collect();

    let mut table = TextTable::new([
        "policy",
        "rules",
        "grants",
        "axiom6",
        "axiom7",
        "desc-lines",
        "compile-us",
    ])
    .numeric();

    for (policy, (_, src)) in policies.iter().zip(&sources) {
        let set = policy.disclosure_set();
        let description = render::render_policy(policy);
        // compile time over enough repetitions to be measurable
        let reps = 200;
        let start = Instant::now();
        for _ in 0..reps {
            let _ = compile(src).expect("compiles");
        }
        let micros = start.elapsed().as_micros() as f64 / reps as f64;
        table.row([
            policy.name.clone(),
            policy.rule_count().to_string(),
            set.len().to_string(),
            f2(set.axiom6_coverage()),
            f2(set.axiom7_coverage()),
            (description.lines().count() - 1).to_string(),
            f2(micros),
        ]);
    }
    print!("{}", table.render());

    // Pairwise comparison matrix.
    println!("\npairwise grant similarity (Jaccard of effective grants):");
    let mut matrix = TextTable::new(
        std::iter::once("policy".to_owned()).chain(policies.iter().map(|p| p.name.clone())),
    )
    .numeric();
    for a in &policies {
        let mut row = vec![a.name.clone()];
        for b in &policies {
            row.push(f3(compare(a, b).grant_similarity()));
        }
        matrix.row(row);
    }
    print!("{}", matrix.render());

    // One rendered example and one full diff, as the paper's worker-facing
    // and analyst-facing outputs.
    println!();
    print!(
        "{}",
        render::render_policy(catalog::by_name("crowdflower").as_ref().unwrap())
    );
    println!();
    let amt = catalog::by_name("amt").unwrap();
    let full = catalog::by_name("faircrowd-full").unwrap();
    print!("{}", compare(&amt, &full).render());
    println!(
        "\nreading: the worker-tool ecosystem (turkopticon row) lifts stock AMT's \
         axiom-6 coverage without platform cooperation; only the fair-by-design \
         policy reaches 1.0 on both axioms; compile cost is microseconds, so \
         policies can be evaluated per page-load."
    );
}
