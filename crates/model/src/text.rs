//! Character n-gram text similarity.
//!
//! Axiom 3 suggests "for textual contributions, n-grams could be used",
//! citing Damashek's *Gauging similarity with n-grams* (Science, 1995).
//! Damashek's method builds a frequency profile of overlapping character
//! n-grams and compares profiles with the cosine measure — it is language-
//! independent and robust to small edits, which is exactly what comparing
//! two workers' free-text contributions needs.

use std::collections::HashMap;

/// A frequency profile of character n-grams.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NgramProfile {
    n: usize,
    counts: HashMap<Vec<u8>, u32>,
    total: u64,
}

impl NgramProfile {
    /// Build the profile of overlapping byte n-grams of `text`.
    ///
    /// The text is case-folded and whitespace runs are collapsed to single
    /// spaces first (Damashek's normalisation), so formatting differences
    /// do not masquerade as content differences. Texts shorter than `n`
    /// produce an empty profile.
    pub fn build(text: &str, n: usize) -> Self {
        assert!(n > 0, "n-gram size must be positive");
        let norm = normalize(text);
        let bytes = norm.as_bytes();
        let mut counts: HashMap<Vec<u8>, u32> = HashMap::new();
        let mut total = 0u64;
        if bytes.len() >= n {
            for w in bytes.windows(n) {
                *counts.entry(w.to_vec()).or_insert(0) += 1;
                total += 1;
            }
        }
        NgramProfile { n, counts, total }
    }

    /// Number of distinct n-grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total n-gram occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The n-gram size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cosine similarity between two profiles in `[0, 1]`.
    ///
    /// Both-empty profiles are identical (1.0); one-empty pairs are
    /// dissimilar (0.0). Profiles built with different `n` are
    /// incomparable and return 0.0.
    pub fn cosine(&self, other: &NgramProfile) -> f64 {
        if self.n != other.n {
            return 0.0;
        }
        if self.total == 0 && other.total == 0 {
            return 1.0;
        }
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        // Iterate the smaller map for the dot product.
        let (small, large) = if self.counts.len() <= other.counts.len() {
            (&self.counts, &other.counts)
        } else {
            (&other.counts, &self.counts)
        };
        let mut dot = 0f64;
        for (g, &c) in small {
            if let Some(&d) = large.get(g) {
                dot += c as f64 * d as f64;
            }
        }
        let na = self.norm();
        let nb = other.norm();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    fn norm(&self) -> f64 {
        self.counts
            .values()
            .map(|&c| (c as f64) * (c as f64))
            .sum::<f64>()
            .sqrt()
    }
}

/// Case-fold and collapse whitespace.
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true; // also trims leading whitespace
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// One-shot n-gram cosine similarity between two texts.
pub fn ngram_cosine(a: &str, b: &str, n: usize) -> f64 {
    NgramProfile::build(a, n).cosine(&NgramProfile::build(b, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_score_one() {
        assert!((ngram_cosine("hello world", "hello world", 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalisation_ignores_case_and_whitespace() {
        let s = ngram_cosine("Hello   World", "hello world", 3);
        assert!((s - 1.0).abs() < 1e-12);
        let t = ngram_cosine("  hello world  ", "hello world", 3);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_edits_stay_similar() {
        let s = ngram_cosine(
            "the committee approved the annual budget proposal",
            "the committee approved the annual budget proposals",
            3,
        );
        assert!(s > 0.9, "one-char edit should barely move cosine: {s}");
    }

    #[test]
    fn unrelated_texts_score_low() {
        let s = ngram_cosine(
            "crowdsourcing fairness axioms",
            "zzz qqq xxyy vvv www kkk",
            3,
        );
        assert!(s < 0.2, "unrelated texts: {s}");
    }

    #[test]
    fn empty_edge_cases() {
        assert_eq!(ngram_cosine("", "", 3), 1.0);
        assert_eq!(ngram_cosine("abcdef", "", 3), 0.0);
        assert_eq!(ngram_cosine("ab", "ab", 3), 1.0); // both shorter than n -> both empty
        assert_eq!(ngram_cosine("ab", "abcdef", 3), 0.0);
    }

    #[test]
    fn profile_statistics() {
        let p = NgramProfile::build("aaaa", 2);
        // "aaaa" -> windows: aa,aa,aa
        assert_eq!(p.total(), 3);
        assert_eq!(p.distinct(), 1);
        assert_eq!(p.n(), 2);
    }

    #[test]
    fn mismatched_n_is_incomparable() {
        let a = NgramProfile::build("hello", 2);
        let b = NgramProfile::build("hello", 3);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn symmetry_and_bounds() {
        let texts = [
            "the quick brown fox",
            "the quick brown foxes",
            "pack my box with five dozen liquor jugs",
            "",
        ];
        for a in &texts {
            for b in &texts {
                let sab = ngram_cosine(a, b, 3);
                let sba = ngram_cosine(b, a, 3);
                assert!((sab - sba).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&sab));
            }
        }
    }

    #[test]
    fn unicode_case_folding() {
        let s = ngram_cosine("ÉCOLE PRIMAIRE", "école primaire", 3);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
