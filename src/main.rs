//! The `faircrowd` command-line tool: audit simulated platforms and work
//! with transparency policies from the shell.
//!
//! ```text
//! faircrowd axioms                         print the paper's seven axioms
//! faircrowd audit [--policy P] [--seed N] [--rounds N] [--opaque]
//!                                          simulate a market and audit it
//! faircrowd policies                       list the TPL platform catalog
//! faircrowd render <policy>                human-readable policy description
//! faircrowd compare <a> <b>                diff two catalog policies
//! ```

use faircrowd::core::report::render_report;
use faircrowd::lang::{catalog, compare, printer, render};
use faircrowd::model::disclosure::DisclosureSet;
use faircrowd::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    match command {
        Some("axioms") => axioms(),
        Some("audit") => audit(&args[1..]),
        Some("policies") => policies(),
        Some("render") => render_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("--help") | Some("-h") | Some("help") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    println!(
        "faircrowd — fairness and transparency auditing for crowdsourcing\n\n\
         USAGE:\n  \
         faircrowd axioms                         print the paper's seven axioms\n  \
         faircrowd audit [--policy P] [--seed N] [--rounds N] [--opaque]\n  \
         faircrowd policies                       list the TPL platform catalog\n  \
         faircrowd render <policy>                human-readable description\n  \
         faircrowd compare <a> <b>                diff two catalog policies\n\n\
         assignment policies for --policy:\n  \
         self-selection | round-robin | requester-centric | online-greedy |\n  \
         worker-centric | kos | parity | floor"
    );
}

fn axioms() -> ExitCode {
    for id in AxiomId::ALL {
        println!("{}\n  {}\n", id.label(), id.statement());
    }
    ExitCode::SUCCESS
}

fn parse_policy(name: &str) -> Option<PolicyChoice> {
    Some(match name {
        "self-selection" => PolicyChoice::SelfSelection,
        "round-robin" => PolicyChoice::RoundRobin,
        "requester-centric" => PolicyChoice::RequesterCentric,
        "online-greedy" => PolicyChoice::OnlineGreedy,
        "worker-centric" => PolicyChoice::WorkerCentric,
        "kos" => PolicyChoice::Kos { l: 3, r: 5 },
        "parity" => PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)),
        "floor" => PolicyChoice::FloorOver(Box::new(PolicyChoice::RequesterCentric), 8),
        _ => return None,
    })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn audit(args: &[String]) -> ExitCode {
    let seed = flag_value(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42u64);
    let rounds = flag_value(args, "--rounds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(48u32);
    let policy_name = flag_value(args, "--policy").unwrap_or("self-selection");
    let Some(policy) = parse_policy(policy_name) else {
        eprintln!("unknown assignment policy `{policy_name}`");
        return ExitCode::FAILURE;
    };
    let opaque = args.iter().any(|a| a == "--opaque");

    let full_time = |mut p: WorkerPopulation| {
        p.participation = 1.0;
        p
    };
    let config = ScenarioConfig {
        seed,
        rounds,
        n_skills: 6,
        workers: vec![full_time(WorkerPopulation::diligent(30))],
        campaigns: vec![
            CampaignSpec::labeling("acme", 50, 10),
            CampaignSpec::labeling("globex", 50, 10),
        ],
        policy: policy.clone(),
        disclosure: if opaque {
            DisclosureSet::opaque()
        } else {
            DisclosureSet::fully_transparent()
        },
        ..Default::default()
    };

    println!(
        "auditing: policy={}, seed={seed}, rounds={rounds}, disclosure={}\n",
        policy.label(),
        if opaque { "opaque" } else { "transparent" }
    );
    let trace = faircrowd::sim::run(config);
    let summary = TraceSummary::of(&trace);
    println!(
        "market: {} submissions, {:.0}% approved, {} paid, retention {:.1}%\n",
        summary.submissions,
        summary.approval_rate * 100.0,
        summary.total_paid,
        summary.retention * 100.0
    );
    let report = AuditEngine::with_defaults().run(&trace);
    println!("{}", render_report(&report));
    ExitCode::SUCCESS
}

fn policies() -> ExitCode {
    println!("catalog policies (TPL sources in faircrowd-lang::catalog):\n");
    for (name, _) in catalog::sources() {
        let policy = catalog::by_name(name).expect("catalog compiles");
        let set = policy.disclosure_set();
        println!(
            "  {:<16} rules {:>2}   axiom-6 {:>4.0}%   axiom-7 {:>4.0}%",
            policy.name,
            policy.rule_count(),
            set.axiom6_coverage() * 100.0,
            set.axiom7_coverage() * 100.0
        );
    }
    println!("\nuse `faircrowd render <policy>` for the worker-facing description");
    ExitCode::SUCCESS
}

fn render_cmd(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: faircrowd render <policy>");
        return ExitCode::FAILURE;
    };
    match catalog::by_name(name) {
        Some(policy) => {
            print!("{}", render::render_policy(&policy));
            println!("\ncanonical TPL source:\n\n{}", printer::print_policy(&policy));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "unknown policy `{name}`; available: {}",
                catalog::sources()
                    .iter()
                    .map(|(n, _)| *n)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

fn compare_cmd(args: &[String]) -> ExitCode {
    let (Some(a), Some(b)) = (args.first(), args.get(1)) else {
        eprintln!("usage: faircrowd compare <a> <b>");
        return ExitCode::FAILURE;
    };
    match (catalog::by_name(a), catalog::by_name(b)) {
        (Some(pa), Some(pb)) => {
            print!("{}", compare(&pa, &pb).render());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("both arguments must be catalog policies");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_documented_policy_name_parses() {
        for name in [
            "self-selection",
            "round-robin",
            "requester-centric",
            "online-greedy",
            "worker-centric",
            "kos",
            "parity",
            "floor",
        ] {
            assert!(parse_policy(name).is_some(), "{name}");
        }
        assert!(parse_policy("magic").is_none());
    }

    #[test]
    fn flag_value_extracts_pairs() {
        let args: Vec<String> = ["--seed", "7", "--policy", "kos"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--seed"), Some("7"));
        assert_eq!(flag_value(&args, "--policy"), Some("kos"));
        assert_eq!(flag_value(&args, "--rounds"), None);
        // flag at the end with no value
        let dangling: Vec<String> = vec!["--seed".into()];
        assert_eq!(flag_value(&dangling, "--seed"), None);
    }
}
