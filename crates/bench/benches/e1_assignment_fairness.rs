//! E1 — Discriminatory power of task-assignment policies.
//!
//! Paper source: §3.1.1 ("requester-centric task assignment … could be
//! discriminatory to workers; worker-centric assignment is more likely to
//! be fair to workers but may be unfavorable to requesters"), §4.2
//! (research agenda: "review existing algorithms for task assignment …
//! to assess their discriminatory power"), Axioms 1–2.
//!
//! For each policy we run the same labeling market (3 seeds) and report
//! the Axiom-1/2 audit scores, exposure inequality, and both sides'
//! outcomes. The fairness-enforcement wrappers (§3.3.1 "fair by design")
//! appear as additional rows over the most discriminatory base policy.

use faircrowd_bench::{banner, f2, f3, mean, presets, run_seeds, TextTable};
use faircrowd_core::{metrics, AuditConfig, AuditEngine, AxiomId, SimilarityConfig, TraceIndex};
use faircrowd_sim::PolicyChoice;

fn main() {
    banner(
        "E1",
        "discriminatory power of assignment policies",
        "paper §3.1.1, §4.2; Axioms 1-2",
    );

    let policies = vec![
        PolicyChoice::SelfSelection,
        PolicyChoice::RoundRobin,
        PolicyChoice::RequesterCentric,
        PolicyChoice::OnlineGreedy,
        PolicyChoice::WorkerCentric,
        PolicyChoice::Kos { l: 3, r: 5 },
        PolicyChoice::ParityOver(Box::new(PolicyChoice::RequesterCentric)),
        PolicyChoice::FloorOver(Box::new(PolicyChoice::RequesterCentric), 8),
    ];

    let engine = AuditEngine::with_defaults();
    let mut table = TextTable::new([
        "policy",
        "A1",
        "A2",
        "exposure-gini",
        "disparity",
        "quality",
        "paid/$",
        "retention",
    ])
    .numeric();

    for policy in policies {
        let traces = run_seeds(|seed| presets::labeling_market(seed, policy.clone()));
        let indexes: Vec<TraceIndex> = traces.iter().map(TraceIndex::new).collect();
        let reports: Vec<_> = indexes
            .iter()
            .map(|ix| {
                engine.run_indexed(
                    ix,
                    &[AxiomId::A1WorkerAssignment, AxiomId::A2RequesterAssignment],
                )
            })
            .collect();
        let a1 = mean(
            reports
                .iter()
                .map(|r| r.score_of(AxiomId::A1WorkerAssignment)),
        );
        let a2 = mean(
            reports
                .iter()
                .map(|r| r.score_of(AxiomId::A2RequesterAssignment)),
        );
        let gini = mean(indexes.iter().map(metrics::exposure_gini));
        let disparity = mean(
            indexes
                .iter()
                .map(|ix| metrics::access_disparity(ix, &engine.config().similarity)),
        );
        let quality = mean(
            indexes
                .iter()
                .map(|ix| metrics::label_quality(ix).unwrap_or(0.0)),
        );
        let paid = mean(
            indexes
                .iter()
                .map(|ix| metrics::total_payout(ix).as_dollars_f64()),
        );
        let retention = mean(indexes.iter().map(metrics::retention));

        table.row([
            policy.label(),
            f3(a1),
            f3(a2),
            f3(gini),
            f3(disparity),
            f3(quality),
            f2(paid),
            f3(retention),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nreading: self-selection/round-robin are the fair anchors (A1≈1); \
         requester-centric discriminates hardest (lowest A1, highest gini); \
         parity/floor wrappers repair exposure while keeping the base policy's \
         assignments."
    );

    // Ablation: the paper makes similarity a *parameter* of the axioms
    // ("from perfect equality to threshold-based"). The same
    // requester-centric trace is audited under three regimes; stricter
    // similarity shrinks the quantifier domain and can hide
    // discrimination entirely.
    println!("\nablation: similarity regime on the requester-centric trace");
    let traces = run_seeds(|seed| presets::labeling_market(seed, PolicyChoice::RequesterCentric));
    let regimes: Vec<(&str, SimilarityConfig)> = vec![
        ("exact (perfect equality)", SimilarityConfig::exact()),
        ("default (threshold 0.9)", SimilarityConfig::default()),
        ("lenient (threshold 0.7)", SimilarityConfig::lenient()),
    ];
    let mut ablation =
        TextTable::new(["similarity regime", "A1", "pairs-checked", "violations"]).numeric();
    for (name, similarity) in regimes {
        let engine = AuditEngine::new(AuditConfig {
            similarity,
            max_witnesses: 0,
            ..AuditConfig::default()
        });
        let reports: Vec<_> = traces
            .iter()
            .map(|t| engine.run_axioms(t, &[AxiomId::A1WorkerAssignment]))
            .collect();
        let a1 = mean(
            reports
                .iter()
                .map(|r| r.score_of(AxiomId::A1WorkerAssignment)),
        );
        let pairs = mean(
            reports
                .iter()
                .map(|r| r.axiom(AxiomId::A1WorkerAssignment).unwrap().checked as f64),
        );
        let violations = mean(reports.iter().map(|r| r.total_violations() as f64));
        ablation.row([name.to_owned(), f3(a1), f2(pairs), f2(violations)]);
    }
    print!("{}", ablation.render());
    println!(
        "\nablation reading: under perfect-equality similarity almost no worker \
         pairs qualify as 'similar', so the same discriminatory trace audits \
         clean — threshold choice is where the teeth of Axiom 1 live."
    );
}
