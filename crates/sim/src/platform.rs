//! The marketplace engine.
//!
//! A round-based (1 round = 1 simulated hour) marketplace loop. Each round:
//!
//! 1. campaigns due this round post their tasks;
//! 2. workers start sessions (and absorb opacity anxiety per the
//!    disclosure configuration);
//! 3. due approval decisions execute — approvals pay, rejections
//!    frustrate, campaign targets may trigger cancellation, which
//!    interrupts in-flight work per the cancellation policy;
//! 4. work started last round lands as submissions;
//! 5. the assignment policy exposes open tasks to online workers and
//!    work starts;
//! 6. detection sweeps run;
//! 7. sessions end; frustration decays; workers may quit.
//!
//! All phases of a round share one event timestamp (round boundary), so
//! the audit log is monotone; precise per-submission timing lives in the
//! [`Submission`] records.

use crate::agents::{frustration, WorkerState};
use crate::config::{ApprovalPolicy, CancellationPolicy, ScenarioConfig};
use crate::gen::{self, Reference};
use crate::strategy::{RequesterStrategy, StrategyState, TaskOffer, WorkerStrategy};
use faircrowd_assign::{AssignInput, AssignmentPolicy, TaskView, WorkerView};
use faircrowd_model::attributes::{AttrValue, DeclaredAttrs};
use faircrowd_model::contribution::Submission;
use faircrowd_model::disclosure::{Audience, DisclosureSet};
use faircrowd_model::event::{CancelReason, Event, EventKind, EventLog, QuitReason};
use faircrowd_model::ids::{CampaignId, RequesterId, SkillId, SubmissionId, TaskId, WorkerId};
use faircrowd_model::requester::Requester;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::task::{Task, TaskKind};
use faircrowd_model::time::{SimDuration, SimTime};
use faircrowd_model::trace::{GroundTruth, Trace};
use faircrowd_model::worker::Worker;
use faircrowd_pay::ledger::Ledger;
use faircrowd_pay::scheme::PayContext;
use faircrowd_quality::answers::AnswerSet;
use faircrowd_quality::spam::WorkerArchetype;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Runtime task state.
struct TaskRt {
    task: Task,
    reference: Reference,
    slots_left: u32,
    canceled: bool,
    campaign: usize,
}

/// Runtime campaign state.
struct CampaignRt {
    spec_index: usize,
    requester: RequesterId,
    task_ids: Vec<TaskId>,
    approved: u32,
    canceled: bool,
    posted: bool,
}

/// Work in progress.
struct InFlight {
    worker: WorkerId,
    task: TaskId,
    started_at: SimTime,
    duration: SimDuration,
    quality: f64,
    submit_round: u32,
}

/// A submission awaiting the requester's decision.
struct PendingJudgment {
    submission: SubmissionId,
    worker: WorkerId,
    task: TaskId,
    requester: RequesterId,
    true_quality: f64,
    submitted_at: SimTime,
    decide_round: u32,
    work_duration: SimDuration,
}

/// Per-worker decision bookkeeping (for running means).
#[derive(Default, Clone, Copy)]
struct DecisionStats {
    decisions: u64,
    latency_sum: u64,
}

/// What one simulated round appended to the world — handed to the
/// observer of [`Simulation::run_observed`] after the round completes,
/// so a streaming auditor can ingest the marketplace as it runs.
#[derive(Debug)]
pub struct RoundDelta<'a> {
    /// The round that just completed (or [`ScenarioConfig::rounds`] for
    /// the final flush).
    pub round: u32,
    /// True for the one post-horizon delta that lands still-flying work
    /// and flushes outstanding judgments.
    pub final_flush: bool,
    /// Tasks posted during the round, in id order.
    pub new_tasks: Vec<&'a Task>,
    /// Submissions that landed during the round.
    pub new_submissions: &'a [Submission],
    /// Audit-log events appended during the round, in seq order.
    pub new_events: &'a [Event],
}

/// The initial world an observer sees before round 0 — everything that
/// exists up front (see [`Simulation::live_setup`]).
#[derive(Debug)]
pub struct LiveSetup<'a> {
    /// All workers, in their initial state (computed attributes evolve
    /// as the simulation runs).
    pub workers: Vec<&'a Worker>,
    /// All requesters.
    pub requesters: &'a [Requester],
    /// The disclosure configuration the platform runs under.
    pub disclosure: &'a DisclosureSet,
    /// Workers that are malicious by construction (the evaluation-only
    /// ground truth the Axiom 4 monitor scores flags against).
    pub malicious_workers: BTreeSet<WorkerId>,
}

/// The simulator.
pub struct Simulation {
    cfg: ScenarioConfig,
    rng: StdRng,
    policy: Box<dyn AssignmentPolicy>,
    worker_strategy: Box<dyn WorkerStrategy>,
    requester_strategy: Box<dyn RequesterStrategy>,
    strategy_state: StrategyState,
    now: SimTime,
    workers: Vec<WorkerState>,
    worker_decisions: Vec<DecisionStats>,
    tasks: Vec<TaskRt>,
    requesters: Vec<Requester>,
    requester_latency: Vec<DecisionStats>,
    campaigns: Vec<CampaignRt>,
    events: EventLog,
    submissions: Vec<Submission>,
    ledger: Ledger,
    answers: AnswerSet,
    durations: BTreeMap<WorkerId, Vec<(SimDuration, SimDuration)>>,
    in_flight: Vec<InFlight>,
    judgments: Vec<PendingJudgment>,
    seen_visibility: BTreeSet<(WorkerId, TaskId)>,
    true_labels: BTreeMap<TaskId, u8>,
}

impl Simulation {
    /// Build a simulation from a scenario (deterministic in the seed),
    /// with neutral strategy state: strategic agents whose state is
    /// neutral behave exactly like [`StrategyChoice::Static`] ones, so a
    /// single un-converged pass over any scenario reproduces the
    /// pre-strategy simulator bit for bit.
    ///
    /// [`StrategyChoice::Static`]: crate::strategy::StrategyChoice::Static
    pub fn new(cfg: ScenarioConfig) -> Self {
        let state = StrategyState::initial(&cfg);
        Simulation::with_state(cfg, state)
    }

    /// Build a simulation whose strategic agents read `state` — the
    /// entry point of the convergence loop ([`crate::converge`]), which
    /// re-runs the scenario under controller-updated states until the
    /// market reaches a fixed point. The state is read-only during the
    /// run; the trace stays a pure function of `(cfg, state)`.
    pub fn with_state(cfg: ScenarioConfig, strategy_state: StrategyState) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let policy = cfg.policy.build();
        let worker_strategy = cfg.strategy.worker_strategy();
        let requester_strategy = cfg.strategy.requester_strategy();

        // Workers.
        const REGIONS: [&str; 4] = ["north", "south", "east", "west"];
        let mut workers = Vec::new();
        for pop in &cfg.workers {
            for _ in 0..pop.count {
                let id = WorkerId::new(workers.len() as u32);
                let mut skills = SkillVector::with_len(cfg.n_skills);
                for s in 0..cfg.n_skills {
                    if rng.gen_bool(pop.skill_prob) {
                        skills.set(SkillId::new(s as u32), true);
                    }
                }
                let declared = DeclaredAttrs::new().with(
                    "region",
                    AttrValue::Text(REGIONS[rng.gen_range(0..REGIONS.len())].to_owned()),
                );
                let base_accuracy = match pop.archetype {
                    WorkerArchetype::Diligent => rng.gen_range(0.85..0.97),
                    WorkerArchetype::Sloppy => rng.gen_range(0.55..0.75),
                    WorkerArchetype::SemiRandomSpammer => rng.gen_range(0.80..0.95),
                    _ => 0.0,
                };
                workers.push(WorkerState::new(
                    Worker::new(id, declared, skills),
                    pop.archetype,
                    base_accuracy,
                    pop.participation,
                    pop.capacity_per_round,
                ));
            }
        }

        // Requesters (one per distinct campaign name, in first-seen order).
        let mut requesters: Vec<Requester> = Vec::new();
        let mut requester_ids: BTreeMap<String, RequesterId> = BTreeMap::new();
        let mut campaigns = Vec::new();
        for (ci, spec) in cfg.campaigns.iter().enumerate() {
            let rid = *requester_ids
                .entry(spec.requester.clone())
                .or_insert_with(|| {
                    let rid = RequesterId::new(requesters.len() as u32);
                    requesters.push(Requester::new(rid, spec.requester.clone()));
                    rid
                });
            campaigns.push(CampaignRt {
                spec_index: ci,
                requester: rid,
                task_ids: Vec::new(),
                approved: 0,
                canceled: false,
                posted: false,
            });
        }

        let max_classes = cfg
            .campaigns
            .iter()
            .map(|c| match c.kind {
                TaskKind::Labeling { classes } => classes,
                TaskKind::Survey => 4,
                _ => 2,
            })
            .max()
            .unwrap_or(2)
            .max(2);
        let n_workers = workers.len();
        let n_requesters = requesters.len();

        Simulation {
            cfg,
            rng,
            policy,
            worker_strategy,
            requester_strategy,
            strategy_state,
            now: SimTime::ZERO,
            workers,
            worker_decisions: vec![DecisionStats::default(); n_workers],
            tasks: Vec::new(),
            requesters,
            requester_latency: vec![DecisionStats::default(); n_requesters],
            campaigns,
            events: EventLog::new(),
            submissions: Vec::new(),
            ledger: Ledger::new(),
            answers: AnswerSet::new(max_classes),
            durations: BTreeMap::new(),
            in_flight: Vec::new(),
            judgments: Vec::new(),
            seen_visibility: BTreeSet::new(),
            true_labels: BTreeMap::new(),
        }
    }

    /// Run the scenario and build the trace.
    pub fn run(self) -> Trace {
        self.run_observed(|_| {})
    }

    /// The initial world an observer of [`Simulation::run_observed`]
    /// sees before round 0: every entity that exists up front, plus the
    /// config facts a streaming auditor needs (disclosure set, the
    /// ground-truth malicious set). Tasks and submissions arrive later,
    /// in [`RoundDelta`]s.
    pub fn live_setup(&self) -> LiveSetup<'_> {
        LiveSetup {
            workers: self.workers.iter().map(|w| &w.worker).collect(),
            requesters: &self.requesters,
            disclosure: &self.cfg.disclosure,
            malicious_workers: self
                .workers
                .iter()
                .filter(|w| w.archetype.is_malicious())
                .map(|w| w.worker.id)
                .collect(),
        }
    }

    /// Run the scenario, calling `observe` after **every round** with
    /// exactly what that round appended to the world (tasks posted,
    /// submissions landed, events logged) — the hook the live-audit
    /// pipeline (`Pipeline::run_live`) ingests from, auditing during
    /// the simulation instead of after it. One final delta (with
    /// [`RoundDelta::final_flush`] set) carries the post-horizon flush
    /// of in-flight work and outstanding judgments. The observer is
    /// passive: observed and unobserved runs produce the identical
    /// trace.
    pub fn run_observed<F: FnMut(RoundDelta<'_>)>(mut self, mut observe: F) -> Trace {
        let rounds = self.cfg.rounds;
        for round in 0..rounds {
            let tasks_before = self.tasks.len();
            let subs_before = self.submissions.len();
            let events_before = self.events.len();
            self.now = SimTime::from_secs(u64::from(round) * 3600);
            self.post_campaigns(round);
            self.start_sessions();
            self.process_due_judgments(round, false);
            self.land_submissions(round);
            self.run_assignment(round);
            self.run_detection(round);
            self.end_sessions();
            observe(RoundDelta {
                round,
                final_flush: false,
                new_tasks: self.tasks[tasks_before..].iter().map(|t| &t.task).collect(),
                new_submissions: &self.submissions[subs_before..],
                new_events: &self.events.as_slice()[events_before..],
            });
        }
        // Final flush: land whatever is still flying, then decide
        // everything outstanding.
        let subs_before = self.submissions.len();
        let events_before = self.events.len();
        self.now = SimTime::from_secs(u64::from(rounds) * 3600);
        self.land_submissions(u32::MAX);
        self.process_due_judgments(u32::MAX, true);
        observe(RoundDelta {
            round: rounds,
            final_flush: true,
            new_tasks: Vec::new(),
            new_submissions: &self.submissions[subs_before..],
            new_events: &self.events.as_slice()[events_before..],
        });
        debug_assert!(self.ledger.conserves(), "ledger must conserve");
        self.build_trace()
    }

    fn spec(&self, campaign: usize) -> &crate::config::CampaignSpec {
        &self.cfg.campaigns[self.campaigns[campaign].spec_index]
    }

    #[allow(clippy::needless_range_loop)] // ci is also stored in tasks/ids
    fn post_campaigns(&mut self, round: u32) {
        // Split the borrows so each campaign's spec is *borrowed* from
        // the config instead of cloned every round for every campaign —
        // this runs in the per-round hot loop.
        let Simulation {
            cfg,
            rng,
            now,
            tasks,
            campaigns,
            events,
            true_labels,
            requester_strategy,
            strategy_state,
            ..
        } = self;
        for ci in 0..campaigns.len() {
            let spec = &cfg.campaigns[campaigns[ci].spec_index];
            if campaigns[ci].posted || spec.post_round != round {
                continue;
            }
            campaigns[ci].posted = true;
            // The requester side of the strategy layer: what this
            // requester actually posts, given the spec reward. Static
            // (and any neutral-state) strategies return `spec.reward`
            // unchanged.
            let posted_reward = requester_strategy.post_reward(
                strategy_state,
                campaigns[ci].requester.index(),
                spec.reward,
            );
            for _ in 0..spec.n_tasks {
                let tid = TaskId::new(tasks.len() as u32);
                let mut skills = SkillVector::with_len(cfg.n_skills);
                for s in 0..cfg.n_skills {
                    if rng.gen_bool(spec.skill_req_prob) {
                        skills.set(SkillId::new(s as u32), true);
                    }
                }
                let reference = match spec.kind {
                    TaskKind::Labeling { classes } => {
                        let truth = rng.gen_range(0..classes.max(2));
                        true_labels.insert(tid, truth);
                        Reference::Label(truth, classes.max(2))
                    }
                    TaskKind::FreeText => Reference::Text(gen::reference_text(tid.raw())),
                    TaskKind::Ranking { items } => {
                        let mut perm: Vec<u16> = (0..u16::from(items.max(2))).collect();
                        use rand::seq::SliceRandom;
                        perm.shuffle(rng);
                        Reference::Ranking(perm)
                    }
                    TaskKind::Survey => Reference::Survey(4),
                };
                let task = Task {
                    id: tid,
                    requester: campaigns[ci].requester,
                    campaign: CampaignId::new(ci as u32),
                    skills,
                    reward: posted_reward,
                    kind: spec.kind,
                    assignments_wanted: spec.assignments_per_task,
                    est_duration: spec.est_duration,
                    conditions: spec.conditions.clone(),
                };
                events.push(
                    *now,
                    EventKind::TaskPosted {
                        task: tid,
                        requester: campaigns[ci].requester,
                    },
                );
                campaigns[ci].task_ids.push(tid);
                tasks.push(TaskRt {
                    task,
                    reference,
                    slots_left: spec.assignments_per_task,
                    canceled: false,
                    campaign: ci,
                });
            }
        }
    }

    fn start_sessions(&mut self) {
        let coverage =
            (self.cfg.disclosure.axiom6_coverage() + self.cfg.disclosure.axiom7_coverage()) / 2.0;
        let opacity = frustration::OPACITY_PER_SESSION * (1.0 - coverage);
        for wi in 0..self.workers.len() {
            if self.workers[wi].quit {
                self.workers[wi].online = false;
                continue;
            }
            let online = self
                .rng
                .gen_bool(self.workers[wi].participation.clamp(0.0, 1.0));
            self.workers[wi].online = online;
            if !online {
                continue;
            }
            let id = self.workers[wi].worker.id;
            self.events
                .push(self.now, EventKind::SessionStarted { worker: id });
            self.workers[wi].worker.computed.sessions += 1;
            self.workers[wi].add_frustration(opacity);
            if !self.workers[wi].disclosures_shown {
                self.workers[wi].disclosures_shown = true;
                for item in self.cfg.disclosure.items_for(Audience::Subject) {
                    self.events
                        .push(self.now, EventKind::DisclosureShown { worker: id, item });
                }
            }
        }
    }

    fn run_assignment(&mut self, round: u32) {
        let tasks: Vec<TaskView> = self
            .tasks
            .iter()
            .filter(|t| !t.canceled && t.slots_left > 0)
            .map(|t| TaskView {
                id: t.task.id,
                requester: t.task.requester,
                skills: t.task.skills.clone(),
                reward: t.task.reward,
                slots: t.slots_left,
                est_duration: t.task.est_duration,
            })
            .collect();
        let workers: Vec<WorkerView> = self
            .workers
            .iter()
            .filter(|w| w.online && !w.quit)
            .map(|w| WorkerView {
                id: w.worker.id,
                skills: w.worker.skills.clone(),
                quality: w.worker.computed.quality_estimate,
                capacity: w.capacity_per_round,
                group: w.worker.declared.group_key("region"),
            })
            .collect();
        if tasks.is_empty() || workers.is_empty() {
            return;
        }
        let input = AssignInput { tasks, workers };
        let outcome = self.policy.assign(&input, &mut self.rng);
        debug_assert!(
            outcome.check_feasible(&input).is_empty(),
            "policy produced infeasible outcome: {:?}",
            outcome.check_feasible(&input)
        );

        // Exposure events (first time a worker sees a task).
        for (&w, vis) in &outcome.visibility {
            for &t in vis {
                if self.seen_visibility.insert((w, t)) {
                    self.events
                        .push(self.now, EventKind::TaskVisible { task: t, worker: w });
                }
            }
        }
        // Assignments become in-flight work — if the worker takes them.
        for (w, t) in outcome.assignments {
            {
                let trt = &self.tasks[t.index()];
                if trt.slots_left == 0 || trt.canceled {
                    continue; // stale (defensive; feasibility is checked above)
                }
                // The worker side of the strategy layer: does this
                // worker take the offer? Declining leaves the slot open
                // and — critically for the static bit-identity guarantee
                // — the check itself makes no RNG draws, so scenarios
                // where every offer clears (static, or neutral state)
                // leave the random stream untouched.
                let ws = &self.workers[w.index()];
                let offer = TaskOffer {
                    reward: trt.task.reward,
                    est_duration: trt.task.est_duration,
                    quality_estimate: ws.worker.computed.quality_estimate,
                    acceptance_ratio: ws.worker.computed.acceptance_ratio,
                };
                if !self
                    .worker_strategy
                    .accepts(&self.strategy_state, w.index(), &offer)
                {
                    continue;
                }
            }
            self.tasks[t.index()].slots_left -= 1;
            self.events
                .push(self.now, EventKind::TaskAccepted { task: t, worker: w });
            self.events
                .push(self.now, EventKind::WorkStarted { task: t, worker: w });
            let ws = &self.workers[w.index()];
            let quality = gen::intended_quality(
                ws.archetype,
                ws.base_accuracy,
                ws.motivation(),
                &mut self.rng,
            );
            let duration = gen::work_duration(
                ws.archetype,
                self.tasks[t.index()].task.est_duration,
                &mut self.rng,
            );
            self.in_flight.push(InFlight {
                worker: w,
                task: t,
                started_at: self.now,
                duration,
                quality,
                submit_round: round + 1,
            });
        }
    }

    fn land_submissions(&mut self, round: u32) {
        let due: Vec<InFlight> = {
            let mut due = Vec::new();
            let mut rest = Vec::new();
            for item in self.in_flight.drain(..) {
                if item.submit_round <= round {
                    due.push(item);
                } else {
                    rest.push(item);
                }
            }
            self.in_flight = rest;
            due
        };
        for item in due {
            let trt = &self.tasks[item.task.index()];
            // Tasks cancelled under the interrupting policy have already
            // had their in-flight items removed; anything still flying
            // lands normally.
            let sid = SubmissionId::new(self.submissions.len() as u32);
            let ws = &mut self.workers[item.worker.index()];
            let contribution =
                gen::contribution(&trt.reference, ws.archetype, item.quality, &mut self.rng);
            let true_quality = gen::objective_quality(&trt.reference, &contribution);
            let submitted_at = item.started_at + item.duration;
            self.submissions.push(Submission {
                id: sid,
                task: item.task,
                worker: item.worker,
                contribution: contribution.clone(),
                started_at: item.started_at,
                submitted_at,
            });
            ws.worker.computed.tasks_submitted += 1;
            ws.seconds_worked += item.duration.as_secs();
            self.events.push(
                self.now,
                EventKind::SubmissionReceived {
                    submission: sid,
                    task: item.task,
                    worker: item.worker,
                },
            );
            // Detection inputs: labels only.
            if let faircrowd_model::contribution::Contribution::Label(l) = contribution {
                if matches!(trt.task.kind, TaskKind::Labeling { .. }) {
                    self.answers.record(item.worker, item.task, l);
                    self.durations
                        .entry(item.worker)
                        .or_default()
                        .push((item.duration, trt.task.est_duration));
                }
            }
            let requester = trt.task.requester;
            self.ledger.submit(
                sid,
                item.worker,
                requester,
                submitted_at,
                self.cfg.auto_approve_after,
            );
            self.judgments.push(PendingJudgment {
                submission: sid,
                worker: item.worker,
                task: item.task,
                requester,
                true_quality,
                submitted_at,
                decide_round: round.saturating_add(self.cfg.decision_delay_rounds),
                work_duration: item.duration,
            });
        }
    }

    fn process_due_judgments(&mut self, round: u32, flush: bool) {
        let due: Vec<PendingJudgment> = {
            let mut due = Vec::new();
            let mut rest = Vec::new();
            for j in self.judgments.drain(..) {
                if flush || j.decide_round <= round {
                    due.push(j);
                } else {
                    rest.push(j);
                }
            }
            self.judgments = rest;
            due
        };
        for j in due {
            self.decide(j);
        }
    }

    fn decide(&mut self, j: PendingJudgment) {
        self.ledger.resolve(j.submission);
        let (approve, feedback_given) = match self.cfg.approval {
            ApprovalPolicy::LenientAll => (true, true),
            ApprovalPolicy::QualityThreshold {
                threshold,
                noise,
                give_feedback,
            } => {
                let judged = (j.true_quality + self.rng.gen_range(-noise..=noise)).clamp(0.0, 1.0);
                (judged >= threshold, give_feedback)
            }
            ApprovalPolicy::RandomReject {
                reject_prob,
                give_feedback,
            } => (!self.rng.gen_bool(reject_prob), give_feedback),
        };
        // The platform's judged quality estimate (shared by payment and
        // attribute updates): objective quality plus bounded noise.
        let judged_quality = match self.cfg.approval {
            ApprovalPolicy::QualityThreshold { noise, .. } => {
                (j.true_quality + self.rng.gen_range(-noise..=noise)).clamp(0.0, 1.0)
            }
            _ => j.true_quality,
        };

        let latency = self.now.since(j.submitted_at);
        // Worker-side bookkeeping.
        {
            let stats = &mut self.worker_decisions[j.worker.index()];
            stats.decisions += 1;
            stats.latency_sum += latency.as_secs();
            let ws = &mut self.workers[j.worker.index()];
            if approve {
                ws.worker.computed.tasks_approved += 1;
            } else {
                ws.worker.computed.tasks_rejected += 1;
            }
            ws.worker.computed.refresh_acceptance_ratio();
            ws.worker.computed.quality_estimate =
                0.7 * ws.worker.computed.quality_estimate + 0.3 * judged_quality;
            ws.worker.computed.mean_approval_latency =
                SimDuration::from_secs(stats.latency_sum / stats.decisions);
        }
        // Requester-side bookkeeping.
        {
            let r = &mut self.requesters[j.requester.index()];
            let stats = &mut self.requester_latency[j.requester.index()];
            stats.decisions += 1;
            stats.latency_sum += latency.as_secs();
            r.mean_decision_latency = SimDuration::from_secs(stats.latency_sum / stats.decisions);
            if approve {
                r.approved += 1;
            } else {
                r.rejected += 1;
                if feedback_given {
                    r.rejections_with_feedback += 1;
                }
            }
        }

        let campaign = self.tasks[j.task.index()].campaign;
        if approve {
            self.events.push(
                self.now,
                EventKind::SubmissionApproved {
                    submission: j.submission,
                    task: j.task,
                    worker: j.worker,
                },
            );
            let ctx = PayContext {
                task_reward: self.tasks[j.task.index()].task.reward,
                quality: judged_quality,
                work_duration: j.work_duration,
            };
            let amount = self.cfg.payment.payout(&ctx);
            if amount.is_positive() {
                self.ledger
                    .pay(j.requester, j.worker, j.submission, amount, self.now);
                self.events.push(
                    self.now,
                    EventKind::PaymentIssued {
                        submission: j.submission,
                        task: j.task,
                        worker: j.worker,
                        amount,
                    },
                );
                self.workers[j.worker.index()]
                    .worker
                    .computed
                    .total_earnings += amount;
            }
            // Bonus promise, honoured or not.
            if let Some(bonus) = self.spec(campaign).bonus {
                if bonus.qualifies(&ctx) {
                    self.events.push(
                        self.now,
                        EventKind::BonusPromised {
                            worker: j.worker,
                            requester: j.requester,
                            amount: bonus.amount,
                        },
                    );
                    self.requesters[j.requester.index()].bonuses_promised += 1;
                    if bonus.honoured {
                        self.ledger
                            .pay_bonus(j.requester, j.worker, bonus.amount, self.now);
                        self.events.push(
                            self.now,
                            EventKind::BonusPaid {
                                worker: j.worker,
                                requester: j.requester,
                                amount: bonus.amount,
                            },
                        );
                        self.requesters[j.requester.index()].bonuses_paid += 1;
                        self.workers[j.worker.index()]
                            .worker
                            .computed
                            .total_earnings += bonus.amount;
                    } else {
                        self.events.push(
                            self.now,
                            EventKind::BonusReneged {
                                worker: j.worker,
                                requester: j.requester,
                                amount: bonus.amount,
                            },
                        );
                        self.workers[j.worker.index()].add_frustration(frustration::BONUS_RENEGED);
                    }
                }
            }
            // Campaign target check.
            self.campaigns[campaign].approved += 1;
            let target = self.spec(campaign).target_approved;
            if let Some(target) = target {
                if self.campaigns[campaign].approved >= target
                    && !self.campaigns[campaign].canceled
                    && self.cfg.cancellation != CancellationPolicy::RunToCompletion
                {
                    self.cancel_campaign(campaign);
                }
            }
        } else {
            let feedback = if feedback_given {
                Some("quality below the stated threshold".to_owned())
            } else {
                None
            };
            let frustration_hit = if feedback.is_some() {
                frustration::REJECTED_WITH_FEEDBACK
            } else {
                frustration::REJECTED_NO_FEEDBACK
            };
            self.events.push(
                self.now,
                EventKind::SubmissionRejected {
                    submission: j.submission,
                    task: j.task,
                    worker: j.worker,
                    feedback,
                },
            );
            self.workers[j.worker.index()].add_frustration(frustration_hit);
        }
    }

    fn cancel_campaign(&mut self, ci: usize) {
        self.campaigns[ci].canceled = true;
        let task_ids = self.campaigns[ci].task_ids.clone();
        for tid in &task_ids {
            let trt = &mut self.tasks[tid.index()];
            if !trt.canceled {
                trt.canceled = true;
                self.events.push(
                    self.now,
                    EventKind::TaskCanceled {
                        task: *tid,
                        reason: CancelReason::TargetReached,
                    },
                );
            }
        }
        // In-flight work on the cancelled tasks.
        match self.cfg.cancellation {
            CancellationPolicy::RunToCompletion => {}
            CancellationPolicy::GraceFinish => {
                // Tasks stop being offered, but flying work finishes and
                // is judged/paid normally — nothing to do here.
            }
            CancellationPolicy::CancelAtTarget { compensate_partial } => {
                let task_set: BTreeSet<TaskId> = task_ids.iter().copied().collect();
                let mut kept = Vec::new();
                for item in self.in_flight.drain(..) {
                    if !task_set.contains(&item.task) {
                        kept.push(item);
                        continue;
                    }
                    let invested = self.now.since(item.started_at).min(item.duration);
                    // Interrupted workers still spent the time.
                    let invested = if invested == SimDuration::ZERO {
                        // cancelled the same round it started: charge the
                        // time they would have spent so far (half the
                        // duration as the midpoint convention)
                        SimDuration::from_secs(item.duration.as_secs() / 2)
                    } else {
                        invested
                    };
                    self.events.push(
                        self.now,
                        EventKind::WorkInterrupted {
                            task: item.task,
                            worker: item.worker,
                            invested,
                            compensated: compensate_partial,
                        },
                    );
                    let ws = &mut self.workers[item.worker.index()];
                    ws.seconds_worked += invested.as_secs();
                    if compensate_partial {
                        let est = self.tasks[item.task.index()].task.est_duration.as_secs();
                        let frac = if est == 0 {
                            1.0
                        } else {
                            (invested.as_secs() as f64 / est as f64).min(1.0)
                        };
                        let amount = self.tasks[item.task.index()].task.reward.mul_f64(frac);
                        ws.add_frustration(frustration::INTERRUPTED_PAID);
                        if amount.is_positive() {
                            self.ledger.pay_bonus(
                                self.tasks[item.task.index()].task.requester,
                                item.worker,
                                amount,
                                self.now,
                            );
                            self.workers[item.worker.index()]
                                .worker
                                .computed
                                .total_earnings += amount;
                        }
                    } else {
                        ws.add_frustration(frustration::INTERRUPTED_UNPAID);
                    }
                }
                self.in_flight = kept;
            }
        }
    }

    fn run_detection(&mut self, round: u32) {
        // Borrow the detection config in place (it used to be cloned
        // every round, even on rounds where detection does not fire).
        let Simulation {
            cfg,
            answers,
            durations,
            events,
            now,
            ..
        } = self;
        let Some(dc) = &cfg.detection else {
            return;
        };
        if round == 0 || !round.is_multiple_of(dc.every_rounds) {
            return;
        }
        let scores = dc.detector.score(answers, Some(&*durations));
        for (worker, score) in scores {
            if score.combined >= dc.detector.threshold {
                events.push(
                    *now,
                    EventKind::WorkerFlagged {
                        worker,
                        score: score.combined,
                        detector: "agreement+repetition+speed".to_owned(),
                    },
                );
            }
        }
    }

    fn end_sessions(&mut self) {
        for wi in 0..self.workers.len() {
            let ws = &mut self.workers[wi];
            if ws.quit || !ws.online {
                if !ws.quit {
                    ws.decay_frustration();
                }
                continue;
            }
            let id = ws.worker.id;
            self.events
                .push(self.now, EventKind::SessionEnded { worker: id });
            ws.decay_frustration();
            let hazard = ws.quit_hazard();
            if self.rng.gen_bool(hazard.clamp(0.0, 1.0)) {
                ws.quit = true;
                ws.online = false;
                let reason = if ws.frustration > frustration::QUIT_KNEE {
                    QuitReason::Frustration
                } else {
                    QuitReason::NaturalChurn
                };
                self.events
                    .push(self.now, EventKind::WorkerQuit { worker: id, reason });
            }
        }
    }

    fn build_trace(self) -> Trace {
        let malicious = self
            .workers
            .iter()
            .filter(|w| w.archetype.is_malicious())
            .map(|w| w.worker.id)
            .collect();
        Trace {
            workers: self.workers.into_iter().map(|w| w.worker).collect(),
            tasks: self.tasks.into_iter().map(|t| t.task).collect(),
            requesters: self.requesters,
            submissions: self.submissions,
            events: self.events,
            disclosure: self.cfg.disclosure,
            horizon: self.now,
            ground_truth: GroundTruth {
                malicious_workers: malicious,
                true_labels: self.true_labels,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CampaignSpec, PolicyChoice, WorkerPopulation};
    use faircrowd_model::disclosure::DisclosureSet;
    use faircrowd_model::money::Credits;

    fn base_config() -> ScenarioConfig {
        ScenarioConfig {
            seed: 7,
            rounds: 24,
            workers: vec![WorkerPopulation::diligent(15)],
            campaigns: vec![CampaignSpec::labeling("acme", 20, 10)],
            ..Default::default()
        }
    }

    #[test]
    fn observed_run_is_identical_and_deltas_tile_the_trace() {
        let plain = Simulation::new(base_config()).run();
        let sim = Simulation::new(base_config());
        let setup = sim.live_setup();
        assert_eq!(setup.workers.len(), 15);
        assert!(setup.malicious_workers.is_empty());
        let n_requesters = setup.requesters.len();
        let mut rounds_seen = 0u32;
        let mut tasks = 0usize;
        let mut subs = 0usize;
        let mut events = 0usize;
        let mut last_seq: Option<u64> = None;
        let observed = sim.run_observed(|delta| {
            if !delta.final_flush {
                assert_eq!(delta.round, rounds_seen);
                rounds_seen += 1;
            }
            tasks += delta.new_tasks.len();
            subs += delta.new_submissions.len();
            events += delta.new_events.len();
            for e in delta.new_events {
                assert_eq!(e.seq, last_seq.map_or(0, |s| s + 1), "seqs stay dense");
                last_seq = Some(e.seq);
            }
        });
        assert_eq!(observed, plain, "the observer must be passive");
        assert_eq!(rounds_seen, base_config().rounds);
        assert_eq!(tasks, observed.tasks.len(), "every task is announced once");
        assert_eq!(subs, observed.submissions.len());
        assert_eq!(events, observed.events.len(), "deltas tile the event log");
        assert_eq!(n_requesters, observed.requesters.len());
    }

    #[test]
    fn run_produces_valid_trace() {
        let trace = Simulation::new(base_config()).run();
        assert!(trace.validate().is_empty(), "{:?}", trace.validate());
        assert_eq!(trace.workers.len(), 15);
        assert_eq!(trace.tasks.len(), 20);
        assert!(!trace.submissions.is_empty(), "some work must happen");
        assert!(trace.events.len() > 50);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Simulation::new(base_config()).run();
        let b = Simulation::new(base_config()).run();
        assert_eq!(a, b);
        let mut other = base_config();
        other.seed = 8;
        let c = Simulation::new(other).run();
        assert_ne!(a, c, "different seed should change the run");
    }

    #[test]
    fn approvals_generate_payments() {
        let trace = Simulation::new(base_config()).run();
        let paid = trace
            .events
            .count_where(|k| matches!(k, EventKind::PaymentIssued { .. }));
        let approved = trace
            .events
            .count_where(|k| matches!(k, EventKind::SubmissionApproved { .. }));
        assert!(approved > 0);
        assert_eq!(paid, approved, "fixed-price pays every approval");
    }

    #[test]
    fn cancellation_interrupts_workers() {
        let mut cfg = base_config();
        cfg.campaigns = vec![CampaignSpec {
            target_approved: Some(10),
            n_tasks: 40,
            assignments_per_task: 3,
            ..CampaignSpec::labeling("survey-co", 40, 10)
        }];
        cfg.cancellation = CancellationPolicy::CancelAtTarget {
            compensate_partial: false,
        };
        let trace = Simulation::new(cfg).run();
        let canceled = trace
            .events
            .count_where(|k| matches!(k, EventKind::TaskCanceled { .. }));
        let interrupted = trace
            .events
            .count_where(|k| matches!(k, EventKind::WorkInterrupted { .. }));
        assert!(canceled > 0, "target must trigger cancellation");
        assert!(interrupted > 0, "someone must have been mid-flight");
    }

    #[test]
    fn grace_finish_cancels_without_interrupting() {
        let mut cfg = base_config();
        cfg.campaigns = vec![CampaignSpec {
            target_approved: Some(10),
            n_tasks: 40,
            assignments_per_task: 3,
            ..CampaignSpec::labeling("survey-co", 40, 10)
        }];
        cfg.cancellation = CancellationPolicy::GraceFinish;
        let trace = Simulation::new(cfg).run();
        let canceled = trace
            .events
            .count_where(|k| matches!(k, EventKind::TaskCanceled { .. }));
        let interrupted = trace
            .events
            .count_where(|k| matches!(k, EventKind::WorkInterrupted { .. }));
        assert!(canceled > 0);
        assert_eq!(interrupted, 0, "grace-finish never interrupts");
    }

    #[test]
    fn spammers_are_flagged() {
        let mut cfg = base_config();
        cfg.rounds = 40;
        cfg.workers = vec![
            WorkerPopulation::diligent(12),
            WorkerPopulation::of(WorkerArchetype::RandomSpammer, 4),
            WorkerPopulation::of(WorkerArchetype::UniformSpammer, 4),
        ];
        cfg.campaigns = vec![CampaignSpec {
            assignments_per_task: 5,
            ..CampaignSpec::labeling("acme", 60, 10)
        }];
        let trace = Simulation::new(cfg).run();
        let flagged: BTreeSet<WorkerId> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::WorkerFlagged { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        assert!(!flagged.is_empty(), "detection sweep should flag someone");
        // flagged workers should be mostly actual spammers
        let spammers = &trace.ground_truth.malicious_workers;
        let hits = flagged.intersection(spammers).count();
        assert!(
            hits * 2 >= flagged.len(),
            "flags should be mostly true positives: {hits}/{}",
            flagged.len()
        );
    }

    #[test]
    fn opaque_platform_loses_more_workers() {
        let horizon = 96;
        let mut transparent = base_config();
        transparent.rounds = horizon;
        transparent.disclosure = DisclosureSet::fully_transparent();
        transparent.approval = ApprovalPolicy::QualityThreshold {
            threshold: 0.6,
            noise: 0.2,
            give_feedback: true,
        };
        let mut opaque = transparent.clone();
        opaque.disclosure = DisclosureSet::opaque();
        opaque.approval = ApprovalPolicy::QualityThreshold {
            threshold: 0.6,
            noise: 0.2,
            give_feedback: false,
        };
        // average across seeds to keep the test robust
        let mut t_quits = 0usize;
        let mut o_quits = 0usize;
        for seed in 0..5 {
            let mut t = transparent.clone();
            t.seed = seed;
            let mut o = opaque.clone();
            o.seed = seed;
            t_quits += Simulation::new(t).run().quits().len();
            o_quits += Simulation::new(o).run().quits().len();
        }
        assert!(
            o_quits > t_quits,
            "opaque platform should lose more workers: {o_quits} vs {t_quits}"
        );
    }

    #[test]
    fn wrongful_rejection_without_feedback_frustrates() {
        let mut cfg = base_config();
        cfg.approval = ApprovalPolicy::RandomReject {
            reject_prob: 0.5,
            give_feedback: false,
        };
        cfg.rounds = 48;
        // enough work to keep everyone busy (and rejected) for weeks
        cfg.campaigns = vec![CampaignSpec::labeling("acme", 150, 10)];
        let trace = Simulation::new(cfg).run();
        let rejected = trace
            .events
            .count_where(|k| matches!(k, EventKind::SubmissionRejected { feedback: None, .. }));
        assert!(rejected > 0);
        let quits = trace.quits();
        assert!(
            !quits.is_empty(),
            "half the work rejected without a word should drive someone away"
        );
    }

    #[test]
    fn bonus_reneging_emits_events() {
        use faircrowd_pay::scheme::BonusPolicy;
        let mut cfg = base_config();
        cfg.campaigns = vec![CampaignSpec {
            bonus: Some(BonusPolicy {
                amount: Credits::from_cents(25),
                quality_threshold: 0.5,
                honoured: false,
            }),
            ..CampaignSpec::labeling("acme", 20, 10)
        }];
        let trace = Simulation::new(cfg).run();
        let promised = trace
            .events
            .count_where(|k| matches!(k, EventKind::BonusPromised { .. }));
        let reneged = trace
            .events
            .count_where(|k| matches!(k, EventKind::BonusReneged { .. }));
        let paid = trace
            .events
            .count_where(|k| matches!(k, EventKind::BonusPaid { .. }));
        assert!(promised > 0);
        assert_eq!(promised, reneged);
        assert_eq!(paid, 0);
    }

    #[test]
    fn policy_choice_affects_exposure() {
        let mut open_cfg = base_config();
        open_cfg.policy = PolicyChoice::SelfSelection;
        let open_trace = Simulation::new(open_cfg).run();
        let mut closed_cfg = base_config();
        closed_cfg.policy = PolicyChoice::RequesterCentric;
        let closed_trace = Simulation::new(closed_cfg).run();
        let exposure = |t: &Trace| {
            t.events
                .count_where(|k| matches!(k, EventKind::TaskVisible { .. }))
        };
        assert!(
            exposure(&open_trace) > exposure(&closed_trace),
            "self-selection exposes more than need-to-know routing"
        );
    }
}
