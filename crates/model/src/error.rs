//! The workspace-wide error type.
//!
//! Every fallible public operation across the FairCrowd crates reports a
//! [`FaircrowdError`]: scenario-configuration problems, unknown policy
//! names from the registry, infeasible assignment outcomes, malformed
//! traces, and transparency-language diagnostics. One type means callers
//! — the `Pipeline`, the CLI, tests, sweeps — handle failures uniformly
//! with `?` instead of juggling per-crate `Vec<String>`, `Option` and
//! panic conventions.

use std::fmt;

/// Any error a FairCrowd operation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaircrowdError {
    /// A scenario configuration is unusable (empty population, zero
    /// rounds, inconsistent campaign parameters, …).
    Config {
        /// What is wrong with the configuration.
        message: String,
    },
    /// A policy name did not resolve in the assignment-policy registry.
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know.
        available: Vec<String>,
    },
    /// A scenario name did not resolve in the scenario catalog.
    UnknownScenario {
        /// The name that failed to resolve.
        name: String,
        /// The names the catalog does know.
        available: Vec<String>,
    },
    /// A strategy name did not resolve in the strategy registry.
    UnknownStrategy {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know.
        available: Vec<String>,
    },
    /// An aggregator name did not resolve in the label-aggregator
    /// registry.
    UnknownAggregator {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know.
        available: Vec<String>,
    },
    /// The strategy-convergence loop failed to reach a fixed point
    /// (iteration cap exceeded, or the controller state went non-finite).
    Diverged {
        /// What failed, with the residual and iteration count.
        message: String,
    },
    /// A policy produced an outcome violating the structural feasibility
    /// invariants (slot limits, capacities, qualification, visibility).
    InfeasibleAssignment {
        /// The offending policy's name.
        policy: String,
        /// Human-readable invariant violations.
        problems: Vec<String>,
    },
    /// A trace failed its internal well-formedness checks.
    InvalidTrace {
        /// Human-readable integrity violations.
        problems: Vec<String>,
    },
    /// A transparency-policy (TPL) diagnostic, already rendered.
    Lang {
        /// The rendered diagnostic.
        message: String,
    },
    /// Reading or writing a trace file failed at the filesystem level.
    Io {
        /// The path involved.
        path: String,
        /// The OS error, rendered.
        message: String,
    },
    /// A trace file's contents could not be decoded: malformed JSON, a
    /// wrong schema name, an unsupported schema version, or a field of
    /// the wrong shape.
    Persist {
        /// The path involved (empty when decoding from memory).
        path: String,
        /// What was wrong, with enough context to find it.
        message: String,
    },
    /// The API or CLI was used incorrectly.
    Usage {
        /// What the caller got wrong.
        message: String,
    },
}

impl FaircrowdError {
    /// A [`FaircrowdError::Config`] from anything displayable.
    pub fn config(message: impl fmt::Display) -> Self {
        FaircrowdError::Config {
            message: message.to_string(),
        }
    }

    /// A [`FaircrowdError::Usage`] from anything displayable.
    pub fn usage(message: impl fmt::Display) -> Self {
        FaircrowdError::Usage {
            message: message.to_string(),
        }
    }

    /// A [`FaircrowdError::Lang`] from anything displayable.
    pub fn lang(message: impl fmt::Display) -> Self {
        FaircrowdError::Lang {
            message: message.to_string(),
        }
    }

    /// A [`FaircrowdError::Diverged`] from anything displayable.
    pub fn diverged(message: impl fmt::Display) -> Self {
        FaircrowdError::Diverged {
            message: message.to_string(),
        }
    }

    /// A [`FaircrowdError::Persist`] with no path (in-memory decoding).
    pub fn persist(message: impl fmt::Display) -> Self {
        FaircrowdError::Persist {
            path: String::new(),
            message: message.to_string(),
        }
    }

    /// Attach (or replace) the file path on I/O and decode errors, so
    /// the loader can report *which* file was bad without every decoder
    /// threading a path through.
    pub fn at_path(self, path: impl fmt::Display) -> Self {
        match self {
            FaircrowdError::Persist { message, .. } => FaircrowdError::Persist {
                path: path.to_string(),
                message,
            },
            FaircrowdError::Io { message, .. } => FaircrowdError::Io {
                path: path.to_string(),
                message,
            },
            other => other,
        }
    }
}

impl fmt::Display for FaircrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaircrowdError::Config { message } => {
                write!(f, "invalid scenario configuration: {message}")
            }
            FaircrowdError::UnknownPolicy { name, available } => {
                write!(
                    f,
                    "unknown policy `{name}`; available: {}",
                    available.join(", ")
                )
            }
            FaircrowdError::UnknownScenario { name, available } => {
                write!(
                    f,
                    "unknown scenario `{name}`; available: {}",
                    available.join(", ")
                )
            }
            FaircrowdError::UnknownStrategy { name, available } => {
                write!(
                    f,
                    "unknown strategy `{name}`; available: {}",
                    available.join(", ")
                )
            }
            FaircrowdError::UnknownAggregator { name, available } => {
                write!(
                    f,
                    "unknown aggregator `{name}`; available: {}",
                    available.join(", ")
                )
            }
            FaircrowdError::Diverged { message } => {
                write!(f, "strategy convergence failed: {message}")
            }
            FaircrowdError::InfeasibleAssignment { policy, problems } => {
                write!(
                    f,
                    "policy `{policy}` produced an infeasible outcome: {}",
                    problems.join("; ")
                )
            }
            FaircrowdError::InvalidTrace { problems } => {
                write!(f, "trace failed validation: {}", problems.join("; "))
            }
            FaircrowdError::Io { path, message } => {
                write!(f, "cannot access trace file `{path}`: {message}")
            }
            FaircrowdError::Persist { path, message } => {
                if path.is_empty() {
                    write!(f, "cannot decode trace: {message}")
                } else {
                    write!(f, "cannot decode trace file `{path}`: {message}")
                }
            }
            FaircrowdError::Lang { message } => write!(f, "{message}"),
            FaircrowdError::Usage { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for FaircrowdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FaircrowdError::UnknownPolicy {
            name: "magic".into(),
            available: vec!["round_robin".into(), "kos".into()],
        };
        let text = e.to_string();
        assert!(text.contains("magic"));
        assert!(text.contains("round_robin"));

        let e = FaircrowdError::InfeasibleAssignment {
            policy: "kos".into(),
            problems: vec!["w0 over capacity".into()],
        };
        assert!(e.to_string().contains("kos"));
        assert!(e.to_string().contains("over capacity"));

        assert!(FaircrowdError::config("no workers")
            .to_string()
            .contains("no workers"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&FaircrowdError::usage("nope"));
    }
}
