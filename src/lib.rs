//! # FairCrowd
//!
//! A Rust implementation of **"Fairness and Transparency in
//! Crowdsourcing"** (Borromeo, Laurent, Toyama, Amer-Yahia; EDBT 2017):
//! the paper's seven fairness/transparency axioms as an executable audit
//! framework, the declarative transparency-policy language it proposes,
//! fairness-enforcement machinery, and the marketplace simulator +
//! baseline algorithms needed to run the paper's validation protocol as
//! controlled experiments.
//!
//! ## Crate map
//!
//! | Crate | What it holds |
//! |-------|---------------|
//! | [`model`] | the §3.2 data model: tasks, workers, skills, contributions, events, traces |
//! | [`quality`] | truth inference (majority, Dawid–Skene, KOS) and spam detection |
//! | [`pay`] | compensation schemes, the payment ledger, wage statistics |
//! | [`assign`] | assignment policies (self-selection → requester-centric → KOS) and fairness wrappers |
//! | [`sim`] | the deterministic marketplace simulator |
//! | [`core`] | **the paper's contribution**: Axioms 1–7, the audit engine, metrics, enforcement |
//! | [`lang`] | **TPL**, the declarative transparency-policy language |
//!
//! ## Sixty-second tour
//!
//! The [`pipeline::Pipeline`] is the front door: it owns the paper's
//! §4.1 validation loop (scenario → simulate → audit → enforce →
//! re-audit) end to end. The [`sweep`] module scales that loop to the
//! full validation *matrix* — grids of scenarios × policies × seeds ×
//! scales run on a thread pool and folded into deterministic aggregate
//! statistics. Scenarios come from the named catalog
//! ([`sim::catalog`]): `"baseline"`, `"spam_campaign"`,
//! `"transparent_utopia"`, ….
//!
//! ```
//! use faircrowd::prelude::*;
//!
//! // 1. Simulate a market under a registry-selected assignment policy
//! //    (fully deterministic in the seed) and audit it against the
//! //    paper's seven axioms.
//! let result = Pipeline::new()
//!     .policy_name("round_robin")?
//!     .seed(42)
//!     .rounds(24)
//!     .enforce(Enforcement::MinimalTransparency)
//!     .run()?;
//! println!("{}", result.render());
//! assert!(result.report().overall_score() > 0.5);
//!
//! // 2. Express a transparency policy declaratively and read it back.
//! let policy = faircrowd::lang::compile_one(
//!     r#"policy "mine" {
//!            disclose worker.acceptance_ratio to subject always;
//!            require requester discloses rejection_criteria before posting;
//!        }"#,
//! )?;
//! println!("{}", faircrowd::lang::render::render_policy(&policy));
//! # Ok::<(), faircrowd::FaircrowdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use faircrowd_assign as assign;
pub use faircrowd_core as core;
pub use faircrowd_lang as lang;
pub use faircrowd_model as model;
pub use faircrowd_pay as pay;
pub use faircrowd_quality as quality;
pub use faircrowd_sim as sim;

pub mod frontier;
pub mod pipeline;
pub mod sweep;

pub use faircrowd_model::FaircrowdError;
pub use frontier::{FrontierPoint, FrontierResult};
pub use pipeline::{Enforcement, LiveRunArtifacts, Pipeline, PipelineResult};
pub use sweep::{SweepGrid, SweepResult};

/// Compile every fenced Rust block in the README as a doctest, so the
/// quickstart the README teaches is guaranteed to build against the
/// current API.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// The items most programs need.
pub mod prelude {
    pub use crate::pipeline::{
        Enforcement, LiveRunArtifacts, Pipeline, PipelineResult, RunArtifacts,
    };
    pub use crate::sweep::{SweepGrid, SweepResult};
    pub use faircrowd_core::{
        AuditConfig, AuditDaemon, AuditEngine, AxiomId, Checkpoint, DaemonConfig, DaemonFinding,
        DaemonReport, FairnessReport, FindingOrigin, LiveAuditor, LiveFinding, MarketSource,
        SimilarityConfig,
    };
    pub use faircrowd_model::prelude::*;
    pub use faircrowd_sim::{
        ApprovalPolicy, CampaignSpec, CancellationPolicy, DetectionConfig, PaymentSchemeChoice,
        PolicyChoice, ScenarioConfig, Simulation, TraceSummary, WorkerPopulation,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_crates_together() {
        let trace = crate::sim::run(ScenarioConfig::default());
        assert!(trace.validate().is_empty());
        let report = AuditEngine::with_defaults().run(&trace);
        assert_eq!(report.axioms.len(), 7);
        assert!((0.0..=1.0).contains(&report.overall_score()));
    }
}
