//! P6 — Streaming-audit throughput: incremental ingestion vs the
//! alternatives.
//!
//! The live subsystem's bet is that keeping a fairness verdict current
//! costs O(monitor work) per event, not O(world). Three paths over the
//! `baseline` catalog scenario:
//!
//! * `incremental` — [`faircrowd_core::live::LiveAuditor`]: per-event
//!   mirror updates + monitors, closing report off the mirrors;
//! * `rebuild_per_event` — re-index the whole prefix after every event
//!   (over a short capped prefix; the honest full sweep is quadratic);
//! * `batch` — the one-shot post-hoc audit, the latency floor that
//!   answers only after the market closed.
//!
//! The incremental closing report is bit-identical to batch (pinned by
//! `tests/live_stream.rs`); `cargo run --release --bin stream_baseline`
//! writes the same comparison as `BENCH_stream.json` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faircrowd_core::live::LiveAuditor;
use faircrowd_core::{AuditConfig, AuditEngine, TraceIndex};
use faircrowd_model::event::EventLog;
use faircrowd_model::trace::Trace;
use faircrowd_sim::{catalog, Simulation};
use std::hint::black_box;

fn trace_at_scale(scale: f64) -> Trace {
    let cfg = catalog::get("baseline")
        .expect("baseline is in the catalog")
        .at_scale(scale);
    Simulation::new(cfg).run()
}

fn bench_stream_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_paths");
    group.sample_size(10);
    let engine = AuditEngine::with_defaults();
    for scale in [1u32, 4] {
        let trace = trace_at_scale(f64::from(scale));
        group.bench_with_input(BenchmarkId::new("incremental", scale), &trace, |b, t| {
            b.iter(|| {
                let mut auditor = LiveAuditor::new(AuditConfig::default());
                auditor.ingest_trace(black_box(t)).expect("valid stream");
                auditor.finalize();
                black_box(auditor.final_report())
            })
        });
        // Rebuild-per-event over a short prefix only: the full sweep is
        // quadratic in the event count and would swamp the run.
        let cap = (trace.events.len() / 20).clamp(1, 200);
        group.bench_with_input(
            BenchmarkId::new("rebuild_per_event_capped", scale),
            &trace,
            |b, t| {
                b.iter(|| {
                    let mut prefix = t.clone();
                    prefix.events = EventLog::new();
                    for e in &t.events.as_slice()[..cap] {
                        prefix.events.push_event(e.clone());
                        let ix = TraceIndex::new(black_box(&prefix));
                        black_box(ix.visibility().len());
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("batch", scale), &trace, |b, t| {
            b.iter(|| black_box(engine.run(black_box(t))))
        });
    }
    group.finish();
}

fn bench_ingest_only(c: &mut Criterion) {
    // Pure ingestion (mirrors + monitors), without the closing report —
    // the steady-state cost a platform pays per event to keep the
    // monitors armed.
    let trace = trace_at_scale(4.0);
    let mut group = c.benchmark_group("stream_ingest_only");
    group.sample_size(10);
    group.bench_function("ingest_scale4", |b| {
        b.iter(|| {
            let mut auditor = LiveAuditor::new(AuditConfig::default());
            auditor
                .ingest_trace(black_box(&trace))
                .expect("valid stream");
            black_box(auditor.events_seen())
        })
    });
    group.finish();
}

criterion_group!(stream, bench_stream_paths, bench_ingest_only);
criterion_main!(stream);
