//! Worker-centric assignment.
//!
//! "A worker-centric assignment that allocates tasks based on workers'
//! preferences is more likely to be fair to workers, by favoring their
//! expected compensation, but may be unfavorable to requesters" (§3.1.1).
//!
//! We realise the strongest version: an exact **maximum-weight
//! b-matching** on worker preference scores (reward × skill affinity) —
//! each worker takes at most `capacity` tasks, each task at most `slots`
//! workers, each (worker, task) pair at most once. Solved as min-cost
//! flow ([`crate::mcmf`]); plain clone-expanded Hungarian matching cannot
//! express the at-most-once pair constraint and provably underperforms
//! (see the mcmf module tests). Visibility is complete for the qualified
//! — a worker-first platform hides nothing.

use crate::mcmf::max_weight_b_matching;
use crate::policy::{preference_score, AssignInput, AssignmentOutcome, AssignmentPolicy};
use rand::RngCore;

/// Exact b-matching maximising total worker preference.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerCentric;

impl AssignmentPolicy for WorkerCentric {
    fn name(&self) -> &'static str {
        "worker-centric"
    }

    fn assign(&mut self, input: &AssignInput, _rng: &mut dyn RngCore) -> AssignmentOutcome {
        let mut outcome = AssignmentOutcome::default();
        for w in &input.workers {
            for t in &input.tasks {
                if w.qualifies(t) {
                    outcome.show(w.id, t.id);
                }
            }
        }
        if input.workers.is_empty() || input.tasks.is_empty() {
            return outcome;
        }

        let weights: Vec<Vec<f64>> = input
            .workers
            .iter()
            .map(|w| {
                input
                    .tasks
                    .iter()
                    .map(|t| {
                        if w.qualifies(t) {
                            preference_score(w, t)
                        } else {
                            f64::NEG_INFINITY
                        }
                    })
                    .collect()
            })
            .collect();
        let capacities: Vec<u32> = input.workers.iter().map(|w| w.capacity).collect();
        let slots: Vec<u32> = input.tasks.iter().map(|t| t.slots).collect();

        for (wi, ti) in max_weight_b_matching(&weights, &capacities, &slots) {
            outcome.assign(input.workers[wi].id, input.tasks[ti].id);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use crate::policy::worker_utility;
    use crate::SelfSelection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feasible() {
        let m = small_market();
        let o = WorkerCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        assert!(
            o.check_feasible(&m).is_empty(),
            "{:?}",
            o.check_feasible(&m)
        );
    }

    #[test]
    fn full_visibility_for_qualified() {
        let m = small_market();
        let o = WorkerCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        for w in &m.workers {
            for t in &m.tasks {
                assert_eq!(
                    o.visibility
                        .get(&w.id)
                        .map(|v| v.contains(&t.id))
                        .unwrap_or(false),
                    w.qualifies(t)
                );
            }
        }
    }

    #[test]
    fn dominates_self_selection_on_worker_utility() {
        let m = small_market();
        let wc = WorkerCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        for seed in 0..8 {
            let ss = SelfSelection.assign(&m, &mut StdRng::seed_from_u64(seed));
            assert!(
                worker_utility(&m, &wc) >= worker_utility(&m, &ss) - 1e-9,
                "matching is optimal for worker preference (seed {seed})"
            );
        }
    }

    #[test]
    fn no_duplicate_worker_task_pairs() {
        let m = small_market();
        let o = WorkerCentric.assign(&m, &mut StdRng::seed_from_u64(0));
        let mut seen = std::collections::BTreeSet::new();
        for pair in &o.assignments {
            assert!(seen.insert(*pair), "duplicate assignment {pair:?}");
        }
    }

    #[test]
    fn empty_market_is_fine() {
        let o = WorkerCentric.assign(&AssignInput::default(), &mut StdRng::seed_from_u64(0));
        assert!(o.assignments.is_empty());
    }
}
