//! E4 — Task completion and interruption.
//!
//! Paper source: §3.1.1 "In Task Completion": "requesters usually publish
//! more HITs than necessary … a requester cancels tasks when she gets the
//! target number of acceptable responses … this would be unfair to a
//! worker who has partially completed a task but is not paid for her
//! efforts." Axiom 5.
//!
//! A survey campaign (120 HITs, target 60 approvals) runs under four
//! cancellation policies. The table shows the fairness/cost trade-off and
//! where the crossover lives: grace-finish keeps Axiom 5 at 1.0 for a
//! small premium over hard cancellation, while run-to-completion pays for
//! every posted HIT.

use faircrowd_bench::{banner, f2, f3, mean, presets, run_seeds, TextTable};
use faircrowd_core::{metrics, AuditEngine, AxiomId, TraceIndex};
use faircrowd_model::event::EventKind;
use faircrowd_sim::CancellationPolicy;

fn main() {
    banner(
        "E4",
        "cancellation policies vs Axiom 5",
        "paper §3.1.1 task completion; Axiom 5",
    );

    let policies: Vec<(&str, CancellationPolicy)> = vec![
        ("run-to-completion", CancellationPolicy::RunToCompletion),
        (
            "cancel-at-target (unpaid)",
            CancellationPolicy::CancelAtTarget {
                compensate_partial: false,
            },
        ),
        (
            "cancel-at-target (pro-rated pay)",
            CancellationPolicy::CancelAtTarget {
                compensate_partial: true,
            },
        ),
        ("grace-finish", CancellationPolicy::GraceFinish),
    ];

    let engine = AuditEngine::with_defaults();
    let mut table = TextTable::new([
        "cancellation policy",
        "A5",
        "interrupted",
        "unpaid-min",
        "approved",
        "cost/$",
        "retention",
    ])
    .numeric();

    for (label, policy) in policies {
        let traces = run_seeds(|seed| presets::survey_market(seed, policy));
        let indexes: Vec<TraceIndex> = traces.iter().map(TraceIndex::new).collect();
        let a5 = mean(indexes.iter().map(|ix| {
            engine
                .run_indexed(ix, &[AxiomId::A5NoInterruption])
                .score_of(AxiomId::A5NoInterruption)
        }));
        let interrupted = mean(traces.iter().map(|t| {
            t.events
                .count_where(|k| matches!(k, EventKind::WorkInterrupted { .. })) as f64
        }));
        let unpaid_min = mean(
            indexes
                .iter()
                .map(|ix| metrics::unpaid_interrupted_seconds(ix) as f64 / 60.0),
        );
        let approved = mean(traces.iter().map(|t| {
            t.events
                .count_where(|k| matches!(k, EventKind::SubmissionApproved { .. }))
                as f64
        }));
        let cost = mean(
            indexes
                .iter()
                .map(|ix| metrics::total_payout(ix).as_dollars_f64()),
        );
        let retention = mean(indexes.iter().map(metrics::retention));
        table.row([
            label.to_owned(),
            f3(a5),
            f2(interrupted),
            f2(unpaid_min),
            f2(approved),
            f2(cost),
            f3(retention),
        ]);
    }

    print!("{}", table.render());
    println!(
        "\nreading: hard cancellation is cheapest for the requester but pays for \
         it in Axiom-5 score, unpaid worker-minutes and retention; pro-rated \
         compensation halves the axiom damage; grace-finish eliminates \
         interruption entirely for a modest overshoot above the target."
    );
}
