//! Enforcement integration: the §3.3.1 "fair by design" story. A platform
//! that fails an axiom is repaired by the corresponding enforcement lever
//! and passes afterwards — each repair staged through the `Pipeline`'s
//! enforce step, which returns the violating baseline and the repaired
//! re-audit from one run.

use faircrowd::core::{enforce, metrics, AxiomId, TraceIndex};
use faircrowd::model::contribution::Contribution;
use faircrowd::model::disclosure::DisclosureSet;
use faircrowd::model::ids::SubmissionId;
use faircrowd::model::money::Credits;
use faircrowd::model::task::TaskConditions;
use faircrowd::prelude::*;

/// A market where workers genuinely compete for slots round after round,
/// so an optimising policy has something to discriminate with. (With
/// abundant slots even the greedy policy serves everyone — and a worker
/// excluded from *all* work stops accumulating history, drops out of the
/// "similar workers" quantifier domain, and hides the discrimination:
/// the computed-attribute interdependency §3.3.1 warns about.)
fn discriminating_market(seed: u64, policy: PolicyChoice) -> ScenarioConfig {
    let full_time = |mut p: WorkerPopulation| {
        p.participation = 1.0;
        p
    };
    ScenarioConfig {
        seed,
        rounds: 36,
        n_skills: 4,
        workers: vec![full_time(WorkerPopulation::diligent(24))],
        campaigns: vec![
            CampaignSpec::labeling("acme", 40, 10),
            CampaignSpec::labeling("globex", 40, 10),
        ],
        policy,
        ..Default::default()
    }
}

#[test]
fn exposure_parity_repairs_axiom1() {
    // One pipeline run: requester-centric baseline, parity-wrapped rerun.
    let result = Pipeline::new()
        .scenario(discriminating_market(3, PolicyChoice::RequesterCentric))
        .axioms(&[AxiomId::A1WorkerAssignment])
        .enforce(Enforcement::ExposureParity)
        .run()
        .expect("market runs");
    let enforced = result.enforced.as_ref().expect("parity was staged");

    let unfair_a1 = result.baseline.report.score_of(AxiomId::A1WorkerAssignment);
    let repaired_a1 = enforced
        .artifacts
        .report
        .score_of(AxiomId::A1WorkerAssignment);

    assert!(
        unfair_a1 < 0.8,
        "requester-centric should discriminate: {unfair_a1:.3}"
    );
    assert!(
        repaired_a1 > 0.9,
        "parity wrapper should repair access: {repaired_a1:.3}"
    );
    assert!(
        repaired_a1 > unfair_a1 + 0.1,
        "repair must be substantial: {unfair_a1:.3} -> {repaired_a1:.3}"
    );
    // and the requesters lose nothing: same payments flow
    assert_eq!(
        metrics::total_payout(&TraceIndex::new(&result.baseline.trace)),
        metrics::total_payout(&TraceIndex::new(&enforced.artifacts.trace)),
        "enforcement must not change what gets done and paid"
    );
}

#[test]
fn payment_equalization_repairs_axiom3() {
    // A quality-ramp scheme pays identical labels differently.
    let mut cfg = discriminating_market(11, PolicyChoice::SelfSelection);
    cfg.payment = faircrowd::sim::PaymentSchemeChoice::QualityBased {
        floor: 0.3,
        full_quality: 1.0,
    };
    let result = Pipeline::new()
        .scenario(cfg)
        .axioms(&[AxiomId::A3Compensation])
        .run()
        .expect("market runs");
    let trace = &result.baseline.trace;
    let before = result.baseline.report.score_of(AxiomId::A3Compensation);
    assert!(before < 0.9, "ramp pricing should violate A3: {before:.3}");

    // Repair: per task, equalise payments across similar contributions.
    let payments = trace.payment_by_submission();
    let mut all_fair = true;
    for (_task, subs) in trace.submissions_by_task() {
        let planned: Vec<(SubmissionId, Contribution, Credits)> = subs
            .iter()
            .map(|s| {
                (
                    s.id,
                    s.contribution.clone(),
                    payments.get(&s.id).copied().unwrap_or(Credits::ZERO),
                )
            })
            .collect();
        let adjusted = enforce::equalize_payments(&planned, 0.85);
        // check the repair invariants directly
        for (sid, contribution, before_amount) in &planned {
            let after = adjusted[sid];
            assert!(after >= *before_amount, "repair never lowers pay");
            // all similar pairs now equal
            for (sid2, c2, _) in &planned {
                if sid != sid2
                    && contribution.similarity(c2) >= 0.85
                    && adjusted[sid] != adjusted[sid2]
                {
                    all_fair = false;
                }
            }
        }
    }
    assert!(
        all_fair,
        "after equalisation every similar pair is equal-paid"
    );
}

#[test]
fn minimal_disclosure_set_repairs_transparency_axioms() {
    // Opaque platform + opaque requesters: both transparency axioms fail
    // in the baseline; the MinimalTransparency enforcement raises the
    // platform's disclosure to the Axiom-6/7 floor for the re-run.
    let mut opaque = discriminating_market(17, PolicyChoice::SelfSelection);
    opaque.disclosure = DisclosureSet::opaque();
    for c in &mut opaque.campaigns {
        c.conditions = TaskConditions::default();
    }
    let result = Pipeline::new()
        .scenario(opaque)
        .axioms(&[
            AxiomId::A6RequesterTransparency,
            AxiomId::A7PlatformTransparency,
        ])
        .enforce(Enforcement::MinimalTransparency)
        .run()
        .expect("market runs");

    let before = &result.baseline.report;
    assert_eq!(before.score_of(AxiomId::A6RequesterTransparency), 0.0);
    assert_eq!(before.score_of(AxiomId::A7PlatformTransparency), 0.0);

    let enforced = result.enforced.as_ref().expect("repair was staged");
    // The applied repair grants at least the minimal transparent set.
    for item in faircrowd::model::DisclosureItem::AXIOM6_REQUIRED {
        assert!(enforced
            .config
            .disclosure
            .allows(item, faircrowd::model::Audience::Workers));
    }
    let after = &enforced.artifacts.report;
    assert!((after.score_of(AxiomId::A6RequesterTransparency) - 1.0).abs() < 1e-9);
    assert!(after.score_of(AxiomId::A7PlatformTransparency) > 0.9);
}

#[test]
fn grace_finish_repairs_axiom5() {
    let survey = ScenarioConfig {
        seed: 23,
        rounds: 36,
        n_skills: 0,
        workers: vec![WorkerPopulation::diligent(20)],
        campaigns: vec![CampaignSpec {
            target_approved: Some(30),
            assignments_per_task: 2,
            ..CampaignSpec::labeling("survey-co", 80, 10)
        }],
        cancellation: CancellationPolicy::CancelAtTarget {
            compensate_partial: false,
        },
        ..Default::default()
    };
    let result = Pipeline::new()
        .scenario(survey)
        .axioms(&[AxiomId::A5NoInterruption])
        .enforce(Enforcement::GraceFinish)
        .run()
        .expect("market runs");

    let harsh_a5 = result.baseline.report.score_of(AxiomId::A5NoInterruption);
    assert!(
        harsh_a5 < 1.0,
        "hard cancellation interrupts: {harsh_a5:.3}"
    );

    let enforced = result.enforced.as_ref().expect("grace-finish was staged");
    assert_eq!(
        enforced.config.cancellation,
        CancellationPolicy::GraceFinish
    );
    let graceful_a5 = enforced
        .artifacts
        .report
        .score_of(AxiomId::A5NoInterruption);
    assert!(
        (graceful_a5 - 1.0).abs() < 1e-12,
        "grace-finish never interrupts"
    );
}
