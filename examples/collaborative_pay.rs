//! Collaborative-task compensation (§3.1.1): "In collaborative tasks, a
//! worker may contribute more than another and still receive the same
//! amount of payment." This example walks through the reward-splitting
//! schemes, shows how the Axiom-3 checker sees each, and applies the
//! payment-equalisation repair to a wrongful-rejection scenario.
//!
//! ```sh
//! cargo run -p faircrowd --example collaborative_pay
//! ```

use faircrowd::core::enforce::equalize_payments;
use faircrowd::model::contribution::Contribution;
use faircrowd::model::ids::SubmissionId;
use faircrowd::model::money::Credits;
use faircrowd::pay::scheme::{split_equal, split_proportional};

fn main() {
    // A collaborative summarisation task pays $3.00 to a team of three.
    let pot = Credits::from_dollars(3);
    // Measured effort shares (e.g. sentences contributed): 50%, 30%, 20%.
    let efforts = [5.0, 3.0, 2.0];

    println!("collaborative pot: {pot}, effort shares 5:3:2\n");

    let equal = split_equal(pot, 3);
    println!(
        "equal split:         {} / {} / {}",
        equal[0], equal[1], equal[2]
    );
    println!(
        "  -> the §3.1.1 complaint: the 50%-effort worker is paid the same\n\
         as the 20%-effort worker.\n"
    );

    let proportional = split_proportional(pot, &efforts);
    println!(
        "proportional split:  {} / {} / {}",
        proportional[0], proportional[1], proportional[2]
    );
    let total: Credits = proportional.iter().copied().sum();
    println!("  -> exact to the millicent (sum = {total}), largest-remainder method.\n");

    // Axiom 3's view: it compares *contributions*, not efforts. Two
    // workers who wrote near-identical summaries must be paid alike even
    // if a third wrote something different.
    let sub = |i: u32| SubmissionId::new(i);
    let summaries = [
        (
            sub(0),
            Contribution::Text("the committee approved the annual budget after long debate".into()),
            Credits::from_cents(120),
        ),
        (
            sub(1),
            // near-identical contribution, wrongfully paid less
            Contribution::Text(
                "the committee approved the annual budget after a long debate".into(),
            ),
            Credits::from_cents(40),
        ),
        (
            sub(2),
            Contribution::Text("unrelated notes about infrastructure spending priorities".into()),
            Credits::from_cents(90),
        ),
    ];
    println!("submissions to one task (n-gram similarity decides 'similar'):");
    for (id, c, paid) in &summaries {
        if let Contribution::Text(t) = c {
            println!("  {id}: paid {paid}  — \"{t}\"");
        }
    }

    let repaired = equalize_payments(&summaries, 0.85);
    println!("\nafter the Axiom-3 repair (raise similar contributions to group max):");
    for (id, _, before) in &summaries {
        let after = repaired[id];
        let marker = if after > *before { "  <- raised" } else { "" };
        println!("  {id}: {before} -> {after}{marker}");
    }
    println!(
        "\nThe near-duplicate pair is equalised upward; the genuinely different\n\
         contribution keeps its own price. Repairs never lower anyone's pay."
    );
}
