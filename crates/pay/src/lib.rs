//! # faircrowd-pay
//!
//! Worker compensation: the substrate behind **Axiom 3** ("given two
//! distinct workers who contributed to the same task, if their
//! contributions are similar, they should receive the same reward") and
//! the discriminatory-compensation scenarios of §3.1.1: wrongful
//! rejection, reneged bonuses, and unequal pay for equal work in
//! collaborative tasks.
//!
//! * [`scheme`] — pluggable compensation schemes: fixed price,
//!   quality-based pricing (after Wang–Ipeirotis–Provost, cited as \[21\]),
//!   bonus schemes that may be honoured or reneged, and collaborative
//!   equal/proportional splits;
//! * [`ledger`] — an exact, integer-money payment ledger with approval
//!   deadlines and auto-approval, whose every movement is auditable;
//! * [`wage`] — effective-hourly-wage computation and wage-inequality
//!   statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ledger;
pub mod scheme;
pub mod wage;

pub use ledger::{Ledger, LedgerEntry};
pub use scheme::{
    split_equal, split_proportional, BonusPolicy, CompensationScheme, FixedPrice, PayContext,
    QualityBased,
};
pub use wage::{hourly_wage, WageStats};
