//! Property tests over random markets: every policy must produce feasible
//! outcomes (slot limits, capacities, qualification, visibility ⊇
//! assignments) on any input, and the enforcement wrappers must only ever
//! *add* exposure.

use faircrowd_assign::{
    select_budget_diverse, AssignInput, AssignmentPolicy, BudgetDiverse, Candidate, ExposureFloor,
    ExposureParity, FairDelivery, KosAllocation, OnlineMatching, RequesterCentric, RoundRobin,
    SelfSelection, TaskView, WorkerCentric, WorkerView,
};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::ids::{RequesterId, TaskId, WorkerId};
use faircrowd_model::money::Credits;
use faircrowd_model::skills::SkillVector;
use faircrowd_model::time::SimDuration;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SKILLS: usize = 5;

fn market_strategy() -> impl Strategy<Value = AssignInput> {
    let task = (
        0u32..3,                                        // requester
        prop::collection::vec(prop::bool::ANY, SKILLS), // skills
        1i64..40,                                       // reward cents
        1u32..4,                                        // slots
    );
    let worker = (
        prop::collection::vec(prop::bool::ANY, SKILLS),
        0.0f64..1.0, // quality
        1u32..4,     // capacity
        0usize..3,   // group index
    );
    (
        prop::collection::vec(task, 0..12),
        prop::collection::vec(worker, 0..12),
    )
        .prop_map(|(tasks, workers)| AssignInput {
            tasks: tasks
                .into_iter()
                .enumerate()
                .map(|(i, (req, skills, cents, slots))| TaskView {
                    id: TaskId::new(i as u32),
                    requester: RequesterId::new(req),
                    skills: SkillVector::from_bools(skills),
                    reward: Credits::from_cents(cents),
                    slots,
                    est_duration: SimDuration::from_mins(5),
                })
                .collect(),
            workers: workers
                .into_iter()
                .enumerate()
                .map(|(i, (skills, quality, capacity, group))| WorkerView {
                    id: WorkerId::new(i as u32),
                    skills: SkillVector::from_bools(skills),
                    quality,
                    capacity,
                    group: Some(["east", "west", "none-of-the-above"][group].to_owned()),
                })
                .collect(),
        })
}

fn all_policies() -> Vec<Box<dyn AssignmentPolicy>> {
    vec![
        Box::new(SelfSelection),
        Box::new(RoundRobin),
        Box::new(RequesterCentric),
        Box::new(OnlineMatching),
        Box::new(WorkerCentric),
        Box::new(KosAllocation { l: 2, r: 3 }),
        Box::new(ExposureParity::new(RequesterCentric)),
        Box::new(ExposureFloor {
            base: OnlineMatching,
            min_exposure: 3,
        }),
        Box::new(BudgetDiverse::default()),
        Box::new(FairDelivery::default()),
    ]
}

fn candidates_strategy() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec(
        (
            0.0f64..1.0, // quality
            1i64..50,    // cost cents
            0usize..4,   // group index (3 = ungrouped)
        ),
        0..14,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (quality, cents, g))| Candidate {
                index: i,
                quality,
                cost: Credits::from_cents(cents),
                group: ["a", "b", "c"].get(g).map(|s| (*s).to_owned()),
            })
            .collect()
    })
}

fn quota_strategy() -> impl Strategy<Value = std::collections::BTreeMap<String, usize>> {
    // (vendored proptest has no btree_map combinator; collect a vec)
    prop::collection::vec((0usize..3, 0usize..5), 0..3).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(g, quota)| (["a", "b", "c"][g].to_owned(), quota))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_is_feasible_on_any_market(input in market_strategy(), seed in 0u64..1000) {
        for mut policy in all_policies() {
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = policy.assign(&input, &mut rng);
            let problems = outcome.check_feasible(&input);
            prop_assert!(
                problems.is_empty(),
                "{} produced infeasible outcome: {problems:?}",
                policy.name()
            );
        }
    }

    #[test]
    fn policies_are_deterministic_in_the_seed(input in market_strategy(), seed in 0u64..1000) {
        for (mut p1, mut p2) in all_policies().into_iter().zip(all_policies()) {
            let a = p1.assign(&input, &mut StdRng::seed_from_u64(seed));
            let b = p2.assign(&input, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(a, b, "{} not deterministic", p1.name());
        }
    }

    #[test]
    fn parity_only_adds_exposure(input in market_strategy(), seed in 0u64..1000) {
        let base = RequesterCentric.assign(&input, &mut StdRng::seed_from_u64(seed));
        let wrapped = ExposureParity::new(RequesterCentric)
            .assign(&input, &mut StdRng::seed_from_u64(seed));
        // assignments identical
        prop_assert_eq!(&base.assignments, &wrapped.assignments);
        // visibility is a superset
        for (w, vis) in &base.visibility {
            let wrapped_vis = wrapped.visibility.get(w).cloned().unwrap_or_default();
            prop_assert!(
                vis.is_subset(&wrapped_vis),
                "parity removed exposure for {w}"
            );
        }
    }

    #[test]
    fn floor_guarantees_min_exposure_or_exhausts_qualification(
        input in market_strategy(),
        seed in 0u64..1000,
    ) {
        let min = 2usize;
        let outcome = ExposureFloor {
            base: RequesterCentric,
            min_exposure: min,
        }
        .assign(&input, &mut StdRng::seed_from_u64(seed));
        for w in &input.workers {
            let seen = outcome.visibility.get(&w.id).map_or(0, |v| v.len());
            let qualified = input.tasks.iter().filter(|t| w.qualifies(t)).count();
            prop_assert!(
                seen >= min.min(qualified),
                "{} sees {seen} of {qualified} qualified (floor {min})",
                w.id
            );
        }
    }

    #[test]
    fn self_selection_exposure_equals_qualification(
        input in market_strategy(),
        seed in 0u64..1000,
    ) {
        let outcome = SelfSelection.assign(&input, &mut StdRng::seed_from_u64(seed));
        for w in &input.workers {
            for t in &input.tasks {
                let visible = outcome
                    .visibility
                    .get(&w.id)
                    .map(|v| v.contains(&t.id))
                    .unwrap_or(false);
                prop_assert_eq!(visible, w.qualifies(t));
            }
        }
    }

    #[test]
    fn budget_diverse_selection_never_exceeds_budget_and_meets_feasible_quotas(
        candidates in candidates_strategy(),
        quota in quota_strategy(),
        slots in 0usize..10,
        budget_cents in 0i64..200,
    ) {
        let budget = Credits::from_cents(budget_cents);
        // Never a panic: either a selection honouring every constraint,
        // or a named infeasibility error.
        match select_budget_diverse(&candidates, slots, budget, &quota) {
            Ok(picks) => {
                prop_assert!(picks.len() <= slots);
                let mut seen = std::collections::BTreeSet::new();
                let mut spent = Credits::ZERO;
                let mut per_group: std::collections::BTreeMap<&str, usize> = Default::default();
                for &i in &picks {
                    prop_assert!(seen.insert(i), "duplicate pick {i}");
                    let c = &candidates[i];
                    spent += c.cost;
                    if let Some(g) = &c.group {
                        *per_group.entry(g.as_str()).or_insert(0) += 1;
                    }
                }
                prop_assert!(spent <= budget, "spent {spent:?} over budget {budget:?}");
                for (g, min) in &quota {
                    let got = per_group.get(g.as_str()).copied().unwrap_or(0);
                    prop_assert!(got >= *min, "group {g} quota {min} unmet ({got})");
                }
            }
            Err(FaircrowdError::InfeasibleAssignment { policy, problems }) => {
                prop_assert_eq!(policy, "budget-diverse");
                prop_assert!(!problems.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    #[test]
    fn worker_centric_is_preference_optimal_vs_greedy_arrivals(
        input in market_strategy(),
        seed in 0u64..100,
    ) {
        use faircrowd_assign::policy::worker_utility;
        let wc = WorkerCentric.assign(&input, &mut StdRng::seed_from_u64(seed));
        let ss = SelfSelection.assign(&input, &mut StdRng::seed_from_u64(seed));
        prop_assert!(
            worker_utility(&input, &wc) >= worker_utility(&input, &ss) - 1e-9,
            "matching lost to greedy self-selection"
        );
    }
}
