//! Sharded-sweep acceptance: merge ≡ single process, byte for byte.
//!
//! The shard engine promises that splitting a grid across part files —
//! under any shard count, any completion interleaving, and any kill
//! point — changes *where* cells are computed and nothing else. These
//! tests pin that promise:
//!
//! * deterministically, for every shard count on a fixed grid (the
//!   table, JSON and CSV of `merge` equal `run_grid`'s bytes);
//! * property-based, over random grids × shard counts × kill points: a
//!   part truncated at an arbitrary **byte** (mid-record, mid-UTF-8 —
//!   whatever a SIGKILL leaves) resumes by re-running exactly the cells
//!   the truncation destroyed, never a durable one;
//! * structurally: resume accounting (`ShardRun::{resumed, ran}`)
//!   matches the part file's contents before the resume.

use faircrowd::sweep::shard::{grid_hash, load_part, merge_paths, partition, run_shard, ShardSpec};
use faircrowd::sweep::{run_grid, SweepGrid};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per test case, so concurrent tests and
/// proptest iterations never share part files.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fc_sweep_shard_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run every shard of `grid` into `dir`, returning the part paths.
fn run_all_shards(grid: &SweepGrid, shards: usize, dir: &std::path::Path) -> Vec<PathBuf> {
    (1..=shards)
        .map(|index| {
            let path = dir.join(format!("part-{index}.json"));
            run_shard(
                grid,
                ShardSpec {
                    index,
                    count: shards,
                },
                &path,
                2,
            )
            .unwrap();
            path
        })
        .collect()
}

#[test]
fn every_shard_count_merges_byte_identical() {
    let grid =
        SweepGrid::parse("policy=round_robin,kos;seed=1,2;rounds=6;enforce=none,grace").unwrap();
    let single = run_grid(&grid, 4).unwrap();
    for shards in [1, 2, 3, 5, 8] {
        let dir = scratch();
        let paths = run_all_shards(&grid, shards, &dir);
        let merged = merge_paths(&paths).unwrap();
        assert_eq!(
            merged.render_table(),
            single.render_table(),
            "{shards} shard(s): table"
        );
        assert_eq!(
            merged.to_json(),
            single.to_json(),
            "{shards} shard(s): json"
        );
        assert_eq!(merged.to_csv(), single.to_csv(), "{shards} shard(s): csv");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn merge_order_is_irrelevant() {
    let grid = SweepGrid::parse("policy=round_robin;seed=1,2,3;rounds=6").unwrap();
    let single = run_grid(&grid, 2).unwrap();
    let dir = scratch();
    let mut paths = run_all_shards(&grid, 3, &dir);
    paths.reverse();
    let merged = merge_paths(&paths).unwrap();
    assert_eq!(merged.to_json(), single.to_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_at_every_line_boundary_resumes_without_rerunning_durable_cells() {
    // Walk the kill point across every record boundary of one part:
    // whatever survives the kill must be resumed, never re-run.
    let grid = SweepGrid::parse("policy=round_robin;seed=1,2,3,4;rounds=6").unwrap();
    let dir = scratch();
    let path = dir.join("part.json");
    let spec = ShardSpec { index: 1, count: 1 };
    let full = run_shard(&grid, spec, &path, 2).unwrap();
    assert_eq!(full.ran, 4);
    let text = std::fs::read_to_string(&path).unwrap();
    let reference = std::fs::read_to_string(&path).unwrap();
    let line_ends: Vec<usize> = text
        .char_indices()
        .filter(|(_, c)| *c == '\n')
        .map(|(i, _)| i + 1)
        .collect();
    // Skip the header boundary (index 0); every later prefix keeps
    // `kept` records durable.
    // line_ends[k] cuts after the header plus k records.
    for (kept, &cut) in line_ends.iter().enumerate().skip(1) {
        std::fs::write(&path, &text[..cut]).unwrap();
        let resumed = run_shard(&grid, spec, &path, 2).unwrap();
        assert_eq!(resumed.resumed, kept, "cut at byte {cut}");
        assert_eq!(resumed.ran, 4 - kept, "cut at byte {cut}");
        // And the repaired part is exactly the uncut one, record for
        // record (append order may differ, so compare as sets of lines).
        let mut a: Vec<String> = std::fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        let mut b: Vec<String> = reference.lines().map(String::from).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "cut at byte {cut}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random grids × shard counts × byte-level kill points: the merge
    /// of resumed parts is byte-identical to the single-process sweep,
    /// and resume re-runs exactly the cells the kill destroyed.
    #[test]
    fn random_kills_resume_and_merge_byte_identical(
        policy_mask in 1usize..4,
        seed_count in 1u64..3,
        stack_count in 1usize..3,
        shards in 1usize..5,
        kill_shard in 0usize..4,
        kill_frac in 0.0f64..1.0,
    ) {
        let policies: Vec<&str> = ["round_robin", "kos"]
            .iter()
            .enumerate()
            .filter(|(i, _)| policy_mask & (1 << i) != 0)
            .map(|(_, p)| *p)
            .collect();
        let seeds: Vec<String> = (1..=seed_count).map(|s| s.to_string()).collect();
        let stacks = ["none", "grace"][..stack_count].join(",");
        let spec = format!(
            "policy={};seed={};rounds=4;enforce={stacks}",
            policies.join(","),
            seeds.join(",")
        );
        let grid = SweepGrid::parse(&spec).unwrap();
        let single = run_grid(&grid, 2).unwrap();

        let dir = scratch();
        let paths = run_all_shards(&grid, shards, &dir);

        // SIGKILL simulation: truncate one part at an arbitrary byte
        // past its header — mid-record and mid-character included.
        let victim = &paths[kill_shard % shards];
        let bytes = std::fs::read(victim).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cut = header_end + ((bytes.len() - header_end) as f64 * kill_frac) as usize;
        std::fs::write(victim, &bytes[..cut.min(bytes.len())]).unwrap();

        let durable = load_part(victim).unwrap().cells.len();
        let victim_spec = ShardSpec { index: (kill_shard % shards) + 1, count: shards };
        let resumed = run_shard(&grid, victim_spec, victim, 2).unwrap();
        prop_assert_eq!(resumed.resumed, durable, "durable cells must not re-run");
        prop_assert_eq!(resumed.ran, resumed.shard_cells - durable);

        let merged = merge_paths(&paths).unwrap();
        prop_assert_eq!(merged.render_table(), single.render_table());
        prop_assert_eq!(merged.to_json(), single.to_json());
        prop_assert_eq!(merged.to_csv(), single.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The partition is deterministic, total, and keeps every
    /// enforce-cluster on one shard for any grid shape.
    #[test]
    fn partition_is_total_and_cluster_stable(
        seed_count in 1u64..5,
        shards in 1usize..7,
    ) {
        let spec = format!("policy=round_robin,kos;seed=1..={seed_count};rounds=4;enforce=none,grace");
        let grid = SweepGrid::parse(&spec).unwrap();
        let cases = grid.expand().unwrap();
        let shard_of = partition(&cases, shards);
        prop_assert_eq!(shard_of.len(), cases.len());
        prop_assert_eq!(partition(&cases, shards), shard_of, "deterministic");
        prop_assert!(shard_of.iter().all(|&s| s < shards), "total");
        prop_assert_eq!(grid_hash(&cases), grid_hash(&cases), "hash deterministic");
        // Cases equal up to the enforcement stack share a shard.
        for (i, a) in cases.iter().enumerate() {
            for (j, b) in cases.iter().enumerate().skip(i + 1) {
                let same_baseline = a.scenario == b.scenario
                    && a.policy == b.policy
                    && a.seed == b.seed
                    && a.scale == b.scale
                    && a.rounds == b.rounds;
                if same_baseline {
                    prop_assert_eq!(shard_of[i], shard_of[j], "cluster split {i}/{j}");
                }
            }
        }
    }
}
