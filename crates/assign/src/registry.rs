//! String-keyed policy registry.
//!
//! CLIs, benches and parameter sweeps select assignment policies by
//! name; this module is the single authority mapping those names to
//! instances, so every entry point (the `faircrowd` CLI, the facade
//! `Pipeline`, experiment configs) agrees on what `"round_robin"` means.
//!
//! Names are canonicalised before lookup — case-insensitive, with `-`
//! accepted for `_` — so `"round-robin"` and `"Round_Robin"` both
//! resolve.
//!
//! ```
//! let mut policy = faircrowd_assign::registry::by_name("round_robin").unwrap();
//! assert_eq!(policy.name(), "round-robin");
//! assert!(faircrowd_assign::registry::by_name("magic").is_err());
//! ```

use crate::fair::{ExposureFloor, ExposureParity};
use crate::policy::AssignmentPolicy;
use crate::{
    BudgetDiverse, FairDelivery, KosAllocation, OnlineMatching, RequesterCentric, RoundRobin,
    SelfSelection, WorkerCentric,
};
use faircrowd_model::error::FaircrowdError;

/// Canonical names of the ten registered policies, in presentation
/// order. Wrapper entries (`parity`, `floor`) enforce over a
/// requester-centric base with the documented default parameters.
pub const NAMES: [&str; 10] = [
    "self_selection",
    "round_robin",
    "requester_centric",
    "online_greedy",
    "worker_centric",
    "kos",
    "parity",
    "floor",
    "budget_diverse",
    "fair_delivery",
];

/// Default `(l, r)` for the `kos` registry entry: 3 workers per task,
/// at most 5 tasks per worker — the paper-cited operating point.
pub const DEFAULT_KOS: (u32, u32) = (3, 5);

/// Default minimum exposure for the `floor` registry entry.
pub const DEFAULT_FLOOR: usize = 8;

/// The shared canonicalisation rule every registry resolves through
/// (lowercase, `-` → `_`) — re-exported so other name-keyed tables
/// (e.g. the simulator's `PolicyChoice`, the scenario catalog) accept
/// exactly the same spellings.
pub use faircrowd_model::names::canonical;

/// Instantiate a policy by (canonicalised) name.
///
/// Errors with [`FaircrowdError::UnknownPolicy`] listing the valid names
/// when the name does not resolve.
pub fn by_name(name: &str) -> Result<Box<dyn AssignmentPolicy>, FaircrowdError> {
    let policy: Box<dyn AssignmentPolicy> = match canonical(name).as_str() {
        "self_selection" => Box::new(SelfSelection),
        "round_robin" => Box::new(RoundRobin),
        "requester_centric" => Box::new(RequesterCentric),
        "online_greedy" => Box::new(OnlineMatching),
        "worker_centric" => Box::new(WorkerCentric),
        "kos" => Box::new(KosAllocation {
            l: DEFAULT_KOS.0,
            r: DEFAULT_KOS.1,
        }),
        "parity" => Box::new(ExposureParity::new(RequesterCentric)),
        "floor" => Box::new(ExposureFloor {
            base: RequesterCentric,
            min_exposure: DEFAULT_FLOOR,
        }),
        "budget_diverse" => Box::new(BudgetDiverse::default()),
        "fair_delivery" => Box::new(FairDelivery::default()),
        _ => {
            return Err(FaircrowdError::UnknownPolicy {
                name: name.to_owned(),
                available: NAMES.iter().map(|n| (*n).to_owned()).collect(),
            })
        }
    };
    Ok(policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::fixtures::small_market;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_name_resolves_and_assigns_feasibly() {
        let market = small_market();
        for name in NAMES {
            let mut policy = by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!policy.name().is_empty());
            let outcome = policy.assign(&market, &mut StdRng::seed_from_u64(7));
            assert!(
                outcome.check_feasible(&market).is_empty(),
                "{name} infeasible"
            );
        }
    }

    #[test]
    fn names_are_canonicalised() {
        assert_eq!(by_name("round-robin").unwrap().name(), "round-robin");
        assert_eq!(
            by_name(" Self_Selection ").unwrap().name(),
            "self-selection"
        );
    }

    #[test]
    fn new_policy_names_round_trip_every_spelling() {
        for (name, report) in [
            ("budget_diverse", "budget-diverse"),
            ("budget-diverse", "budget-diverse"),
            (" Budget_Diverse ", "budget-diverse"),
            ("fair_delivery", "fair-delivery"),
            ("FAIR-DELIVERY", "fair-delivery"),
        ] {
            assert_eq!(by_name(name).unwrap().name(), report, "spelling {name:?}");
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        let err = match by_name("magic") {
            Err(err) => err,
            Ok(policy) => panic!("`magic` resolved to {}", policy.name()),
        };
        match err {
            FaircrowdError::UnknownPolicy { name, available } => {
                assert_eq!(name, "magic");
                assert_eq!(available.len(), NAMES.len());
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
