//! Writes the multi-market daemon perf row for `BENCH_stream.json`.
//!
//! Simulates a platform running **1024 concurrent markets** (four
//! distinct small scenario variants, round-robin): every market's JSONL
//! stream is fed to one [`AuditDaemon`] in interleaved chunks — the
//! worst case for locality, the normal case for a live platform — with
//! checkpointing on, and the aggregate ingest throughput (events/s
//! across all markets, checkpoint save cost amortized in) is measured.
//! A second phase restarts the daemon from the 1024 checkpoints and
//! measures the restore-and-close cost (no log replay).
//!
//! ```text
//! cargo run --release --bin daemon_baseline
//! ```
//!
//! Asserted in-binary, before any number is printed:
//!
//! * stream == batch: every market's closing report is bit-identical to
//!   the batch engine's over its variant trace;
//! * the restarted daemon resumes **every** market from its checkpoint
//!   (zero replayed events) and closes on the same reports.

use faircrowd_core::daemon::{AuditDaemon, DaemonConfig};
use faircrowd_core::persist::{self, TraceFormat};
use faircrowd_core::{AuditConfig, AuditEngine, FairnessReport, LiveAuditor};
use faircrowd_model::trace::Trace;
use faircrowd_sim::{CampaignSpec, ScenarioConfig, Simulation, WorkerPopulation};
use std::time::Instant;

const N_MARKETS: usize = 1024;
const N_VARIANTS: usize = 4;
/// Markets' lines are fed in interleaved chunks of this many lines per
/// market between daemon polls — a tailing daemon's poll granularity.
const CHUNK_LINES: usize = 64;

fn variant_trace(seed: u64) -> Trace {
    Simulation::new(ScenarioConfig {
        seed,
        rounds: 8,
        workers: vec![WorkerPopulation::diligent(6)],
        campaigns: vec![CampaignSpec::labeling("acme", 8, 6)],
        ..Default::default()
    })
    .run()
}

fn market_name(m: usize) -> String {
    format!("market-{m:04}")
}

fn drive(
    daemon: &mut AuditDaemon,
    streams: &[Vec<String>],
) -> (u64, Vec<(String, FairnessReport)>) {
    let max_lines = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut offset = 0;
    while offset < max_lines {
        let end = (offset + CHUNK_LINES).min(max_lines);
        for (m, lines) in streams.iter().enumerate().take(N_MARKETS) {
            for line in lines.iter().take(end).skip(offset) {
                daemon.feed_line(&market_name(m), line.as_str());
            }
        }
        daemon.poll();
        offset = end;
    }
    daemon.finalize();
    let events = daemon.total_events();
    let reports = daemon
        .reports()
        .expect("every market closes cleanly")
        .into_iter()
        .map(|r| (r.market, r.report))
        .collect();
    (events, reports)
}

fn main() {
    let ckpt_dir = std::env::temp_dir().join(format!("fc_daemon_bench_{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).expect("temp checkpoint dir");

    let engine = AuditEngine::with_defaults();
    let variants: Vec<Trace> = (0..N_VARIANTS)
        .map(|i| variant_trace(7 + i as u64))
        .collect();
    let batch: Vec<FairnessReport> = variants.iter().map(|t| engine.run(t)).collect();

    // The single-stream oracle first: each variant streams bit-identically.
    for (t, want) in variants.iter().zip(&batch) {
        let mut auditor = LiveAuditor::new(AuditConfig::default());
        auditor.ingest_trace(t).expect("well-formed stream");
        auditor.finalize();
        assert_eq!(&auditor.final_report(), want, "stream ≠ batch");
    }

    let variant_lines: Vec<Vec<String>> = variants
        .iter()
        .map(|t| {
            persist::encode(t, TraceFormat::Jsonl)
                .lines()
                .map(str::to_owned)
                .collect()
        })
        .collect();
    let streams: Vec<Vec<String>> = (0..N_MARKETS)
        .map(|m| variant_lines[m % N_VARIANTS].clone())
        .collect();
    let events_per_market: Vec<usize> = variants.iter().map(|t| t.events.len()).collect();
    let total_events: usize = (0..N_MARKETS)
        .map(|m| events_per_market[m % N_VARIANTS])
        .sum();
    // ~3 snapshots per market over its stream (plus the closing one).
    let checkpoint_every = (events_per_market.iter().min().copied().unwrap_or(1) as u64 / 3).max(1);
    // Floor at 4 shards so the sharded-merge path is exercised even on
    // single-core runners (output is jobs-invariant by construction).
    let jobs = std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .max(4);
    let config = DaemonConfig {
        audit: AuditConfig::default(),
        jobs,
        checkpoint_dir: Some(ckpt_dir.clone()),
        checkpoint_every,
    };

    // Phase 1: cold ingest of all markets, interleaved, checkpoints on.
    let t0 = Instant::now();
    let mut daemon = AuditDaemon::new(config.clone());
    let (ingested, reports) = drive(&mut daemon, &streams);
    let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(ingested as usize, total_events, "every event ingested");
    assert_eq!(reports.len(), N_MARKETS, "every market reports");
    for (market, report) in &reports {
        let m: usize = market["market-".len()..].parse().expect("market index");
        assert_eq!(report, &batch[m % N_VARIANTS], "{market}: daemon ≠ batch");
    }
    drop(daemon);

    // Phase 2: restart from the 1024 checkpoints. The tailer re-feeds
    // every line (a restarted daemon re-reads its files), but the
    // consumed prefixes are skipped by count — zero events replayed.
    let t1 = Instant::now();
    let mut restarted = AuditDaemon::new(config);
    let (_, reports_again) = drive(&mut restarted, &streams);
    let restore_ms = t1.elapsed().as_secs_f64() * 1e3;
    let notices = restarted.take_notices();
    let resumed = notices
        .iter()
        .filter(|n| n.contains("resumed market"))
        .count();
    assert_eq!(
        resumed, N_MARKETS,
        "every market resumes from its checkpoint"
    );
    assert_eq!(
        restarted.total_events() as usize,
        total_events,
        "restored lifetimes cover the whole stream"
    );
    for ((ma, ra), (mb, rb)) in reports.iter().zip(&reports_again) {
        assert_eq!(ma, mb);
        assert_eq!(ra, rb, "{ma}: restart ≠ uninterrupted");
    }
    drop(restarted);
    std::fs::remove_dir_all(&ckpt_dir).ok();

    let aggregate_eps = total_events as f64 / (ingest_ms / 1e3);
    println!("{{");
    println!("  \"bench\": \"daemon_stream\",");
    println!(
        "  \"note\": \"AuditDaemon over {N_MARKETS} interleaved markets ({N_VARIANTS} scenario \
         variants), JSONL lines fed in {CHUNK_LINES}-line chunks per market between polls, \
         checkpoints every {checkpoint_every} events per market included in the timing; \
         restore = restart from all {N_MARKETS} checkpoints and close (prefix skipped by \
         line count, zero events replayed); every market's closing report asserted \
         bit-identical to the batch audit in both phases\","
    );
    println!("  \"markets\": {N_MARKETS},");
    println!("  \"jobs\": {jobs},");
    println!("  \"events_total\": {total_events},");
    println!("  \"checkpoint_every\": {checkpoint_every},");
    println!("  \"ingest_ms\": {ingest_ms:.3},");
    println!("  \"aggregate_events_s\": {aggregate_eps:.0},");
    println!("  \"restore_ms\": {restore_ms:.3},");
    println!(
        "  \"restore_ms_per_market\": {:.3}",
        restore_ms / N_MARKETS as f64
    );
    println!("}}");
}
