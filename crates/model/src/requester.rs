//! Requesters.
//!
//! The paper identifies requesters only by `id_r`, but the transparency
//! axioms (and the Turkopticon-style tooling the paper surveys) attach
//! observable behaviour to them: how fast they pay, how often they reject,
//! whether they give feedback, and the community rating derived from all of
//! that.

use crate::ids::RequesterId;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A requester profile with the reputation statistics worker-facing tools
/// (Turkopticon, Turker Nation) derive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requester {
    /// Unique requester identifier `id_r`.
    pub id: RequesterId,
    /// Display name for reports.
    pub name: String,
    /// Submissions approved.
    pub approved: u64,
    /// Submissions rejected.
    pub rejected: u64,
    /// Rejections that carried an explanation (feedback).
    pub rejections_with_feedback: u64,
    /// Mean time between submission and the approval/rejection decision.
    pub mean_decision_latency: SimDuration,
    /// Bonuses promised.
    pub bonuses_promised: u64,
    /// Bonuses actually paid.
    pub bonuses_paid: u64,
}

impl Requester {
    /// A requester with no history.
    pub fn new(id: RequesterId, name: impl Into<String>) -> Self {
        Requester {
            id,
            name: name.into(),
            approved: 0,
            rejected: 0,
            rejections_with_feedback: 0,
            mean_decision_latency: SimDuration::ZERO,
            bonuses_promised: 0,
            bonuses_paid: 0,
        }
    }

    /// Fraction of judged submissions that were approved (1.0 with no
    /// history — no evidence against the requester).
    pub fn approval_rate(&self) -> f64 {
        let judged = self.approved + self.rejected;
        if judged == 0 {
            1.0
        } else {
            self.approved as f64 / judged as f64
        }
    }

    /// Fraction of rejections that carried feedback (1.0 with none).
    pub fn feedback_rate(&self) -> f64 {
        if self.rejected == 0 {
            1.0
        } else {
            self.rejections_with_feedback as f64 / self.rejected as f64
        }
    }

    /// Fraction of promised bonuses that were honoured (1.0 with none).
    pub fn bonus_honour_rate(&self) -> f64 {
        if self.bonuses_promised == 0 {
            1.0
        } else {
            self.bonuses_paid as f64 / self.bonuses_promised as f64
        }
    }

    /// A Turkopticon-style 0–5 community rating: mean of approval rate,
    /// feedback rate and bonus honour rate, scaled to 5.
    pub fn community_rating(&self) -> f64 {
        5.0 * (self.approval_rate() + self.feedback_rate() + self.bonus_honour_rate()) / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_requester_has_perfect_rates() {
        let r = Requester::new(RequesterId::new(0), "acme");
        assert_eq!(r.approval_rate(), 1.0);
        assert_eq!(r.feedback_rate(), 1.0);
        assert_eq!(r.bonus_honour_rate(), 1.0);
        assert!((r.community_rating() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rates_reflect_history() {
        let mut r = Requester::new(RequesterId::new(1), "sloppy");
        r.approved = 60;
        r.rejected = 40;
        r.rejections_with_feedback = 10;
        r.bonuses_promised = 4;
        r.bonuses_paid = 1;
        assert!((r.approval_rate() - 0.6).abs() < 1e-12);
        assert!((r.feedback_rate() - 0.25).abs() < 1e-12);
        assert!((r.bonus_honour_rate() - 0.25).abs() < 1e-12);
        let rating = r.community_rating();
        assert!(rating > 0.0 && rating < 5.0);
        // (0.6 + 0.25 + 0.25)/3 * 5
        assert!((rating - 5.0 * (1.1 / 3.0)).abs() < 1e-9);
    }
}
