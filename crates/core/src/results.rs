//! JSON codecs for per-cell audit results — the payload of sweep part
//! files.
//!
//! A sharded sweep persists each finished grid cell as one compact JSON
//! record so a killed shard can resume and a `merge` can rebuild the
//! exact [`FairnessReport`] (and wage statistics) the single-process
//! sweep would have produced. Byte-identical merge output therefore
//! rides on these codecs being **lossless**: floats are written in
//! Rust's shortest round-trip form (and non-finite values in the
//! [`faircrowd_model::json::Json::float`] string spellings), counts as
//! integer tokens, and axioms by their stable table labels
//! ([`AxiomId::label`] / [`AxiomId::from_label`]).
//!
//! Decoding follows the same never-panic discipline as every persisted
//! schema in this crate: a missing field, wrong type, or unknown axiom
//! label is a [`FaircrowdError::Persist`] naming the field and the
//! context it sat in.
//!
//! ```
//! use faircrowd_core::results;
//! use faircrowd_core::{AxiomId, AxiomReport, FairnessReport};
//!
//! let report = FairnessReport {
//!     axioms: vec![AxiomReport::vacuous(AxiomId::A3Compensation, "no shared tasks")],
//! };
//! let json = results::report_to_json(&report);
//! assert_eq!(results::report_from_json(&json, "cell 0")?, report);
//! # Ok::<(), faircrowd_model::FaircrowdError>(())
//! ```

use crate::audit::FairnessReport;
use crate::axiom::{AxiomId, AxiomReport, Violation};
use crate::fields::{arr_field, bool_field, f64_field, str_field, u64_field};
use faircrowd_model::error::FaircrowdError;
use faircrowd_model::json::Json;
use faircrowd_pay::wage::WageStats;

/// Encode a [`FairnessReport`] as a JSON object (losslessly; see the
/// module docs).
pub fn report_to_json(report: &FairnessReport) -> Json {
    Json::Obj(vec![(
        "axioms".to_owned(),
        Json::Arr(report.axioms.iter().map(axiom_report_to_json).collect()),
    )])
}

/// Decode a [`FairnessReport`] written by [`report_to_json`]. `ctx`
/// names where the object sat (e.g. `part file line 7`) in errors.
pub fn report_from_json(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<FairnessReport, FaircrowdError> {
    let axioms = arr_field(json, "axioms", &ctx)?
        .iter()
        .enumerate()
        .map(|(i, a)| axiom_report_from_json(a, format!("{ctx}: axiom {i}")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FairnessReport { axioms })
}

fn axiom_report_to_json(report: &AxiomReport) -> Json {
    Json::Obj(vec![
        ("axiom".to_owned(), Json::str(report.axiom.label())),
        ("score".to_owned(), Json::float(report.score)),
        ("checked".to_owned(), Json::uint(report.checked as u64)),
        (
            "violations".to_owned(),
            Json::Arr(
                report
                    .violations
                    .iter()
                    .map(|v| {
                        Json::Obj(vec![
                            ("severity".to_owned(), Json::float(v.severity)),
                            ("description".to_owned(), Json::str(&*v.description)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violation_count".to_owned(),
            Json::uint(report.violation_count as u64),
        ),
        ("truncated".to_owned(), Json::Bool(report.truncated)),
        (
            "notes".to_owned(),
            Json::Arr(report.notes.iter().map(Json::str).collect()),
        ),
    ])
}

fn axiom_report_from_json(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<AxiomReport, FaircrowdError> {
    let label = str_field(json, "axiom", &ctx)?;
    let axiom = AxiomId::from_label(label)
        .ok_or_else(|| FaircrowdError::persist(format!("{ctx}: unknown axiom label `{label}`")))?;
    let violations = arr_field(json, "violations", &ctx)?
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let vctx = format!("{ctx}: violation {i}");
            Ok(Violation {
                axiom,
                severity: f64_field(v, "severity", &vctx)?,
                description: str_field(v, "description", &vctx)?.to_owned(),
            })
        })
        .collect::<Result<Vec<_>, FaircrowdError>>()?;
    let notes = arr_field(json, "notes", &ctx)?
        .iter()
        .enumerate()
        .map(|(i, n)| {
            n.as_str().map(str::to_owned).ok_or_else(|| {
                FaircrowdError::persist(format!(
                    "{ctx}: note {i} should be a string, got {}",
                    n.kind()
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(AxiomReport {
        axiom,
        score: f64_field(json, "score", &ctx)?,
        checked: usize_field(json, "checked", &ctx)?,
        violations,
        violation_count: usize_field(json, "violation_count", &ctx)?,
        truncated: bool_field(json, "truncated", &ctx)?,
        notes,
    })
}

/// Encode [`WageStats`] as a JSON object (losslessly).
pub fn wages_to_json(wages: &WageStats) -> Json {
    Json::Obj(vec![
        ("n".to_owned(), Json::uint(wages.n as u64)),
        ("mean".to_owned(), Json::float(wages.mean)),
        ("median".to_owned(), Json::float(wages.median)),
        ("p10".to_owned(), Json::float(wages.p10)),
        ("p90".to_owned(), Json::float(wages.p90)),
        ("gini".to_owned(), Json::float(wages.gini)),
        ("theil".to_owned(), Json::float(wages.theil)),
        ("jain".to_owned(), Json::float(wages.jain)),
    ])
}

/// Decode [`WageStats`] written by [`wages_to_json`].
pub fn wages_from_json(
    json: &Json,
    ctx: impl std::fmt::Display,
) -> Result<WageStats, FaircrowdError> {
    Ok(WageStats {
        n: usize_field(json, "n", &ctx)?,
        mean: f64_field(json, "mean", &ctx)?,
        median: f64_field(json, "median", &ctx)?,
        p10: f64_field(json, "p10", &ctx)?,
        p90: f64_field(json, "p90", &ctx)?,
        gini: f64_field(json, "gini", &ctx)?,
        theil: f64_field(json, "theil", &ctx)?,
        jain: f64_field(json, "jain", &ctx)?,
    })
}

fn usize_field(
    json: &Json,
    key: &str,
    ctx: impl std::fmt::Display,
) -> Result<usize, FaircrowdError> {
    let v = u64_field(json, key, &ctx)?;
    usize::try_from(v)
        .map_err(|_| FaircrowdError::persist(format!("{ctx}: field `{key}` overflows a count")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_report() -> FairnessReport {
        let mut a3 = AxiomReport::vacuous(AxiomId::A3Compensation, "note one");
        a3.score = 1.0 / 3.0; // not representable exactly; round-trips via shortest form
        a3.checked = 41;
        a3.violation_count = 3;
        a3.truncated = true;
        a3.violations = vec![Violation {
            axiom: AxiomId::A3Compensation,
            severity: 0.1 + 0.2, // 0.30000000000000004 — shortest-form fodder
            description: "worker 3 vs worker 9: \"quoted\" reward gap".to_owned(),
        }];
        FairnessReport {
            axioms: vec![
                a3,
                AxiomReport::vacuous(AxiomId::A7PlatformTransparency, "all disclosed"),
            ],
        }
    }

    #[test]
    fn report_roundtrips_bit_exact() {
        let report = busy_report();
        let json = report_to_json(&report);
        let back = report_from_json(&json, "test").unwrap();
        assert_eq!(back, report);
        // And through a textual encode/parse cycle, as in a part file.
        let reparsed = Json::parse(&json.to_compact()).unwrap();
        assert_eq!(report_from_json(&reparsed, "test").unwrap(), report);
    }

    #[test]
    fn wages_roundtrip_bit_exact_including_nonfinite() {
        let wages = WageStats {
            n: 17,
            mean: 12.340000000000001,
            median: 11.0,
            p10: 2.5,
            p90: 30.75,
            gini: 0.30000000000000004,
            theil: f64::NAN,
            jain: f64::INFINITY,
        };
        let json = Json::parse(&wages_to_json(&wages).to_compact()).unwrap();
        let back = wages_from_json(&json, "test").unwrap();
        assert_eq!(back.n, wages.n);
        assert_eq!(back.mean.to_bits(), wages.mean.to_bits());
        assert_eq!(back.gini.to_bits(), wages.gini.to_bits());
        assert!(back.theil.is_nan());
        assert_eq!(back.jain, f64::INFINITY);
    }

    #[test]
    fn unknown_axiom_label_is_a_named_persist_error() {
        let mut json = report_to_json(&busy_report());
        if let Json::Obj(members) = &mut json {
            if let Json::Arr(axioms) = &mut members[0].1 {
                if let Json::Obj(fields) = &mut axioms[0] {
                    fields[0].1 = Json::str("A9-imaginary");
                }
            }
        }
        let err = report_from_json(&json, "part line 4").unwrap_err();
        assert!(matches!(err, FaircrowdError::Persist { .. }), "{err:?}");
        assert!(err.to_string().contains("A9-imaginary"), "{err}");
        assert!(err.to_string().contains("part line 4"), "{err}");
    }

    #[test]
    fn missing_field_names_context() {
        let err = wages_from_json(&Json::Obj(vec![]), "cell 12 wages").unwrap_err();
        assert!(err.to_string().contains("cell 12 wages"), "{err}");
        assert!(err.to_string().contains("`n`"), "{err}");
    }

    #[test]
    fn axiom_labels_roundtrip() {
        for id in AxiomId::ALL {
            assert_eq!(AxiomId::from_label(id.label()), Some(id));
        }
        assert_eq!(AxiomId::from_label("A0-nope"), None);
    }
}
