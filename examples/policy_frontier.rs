//! Policy frontier: chart the quality/fairness trade-off.
//!
//! Sweeps a policy × aggregator × enforcement grid on one scenario,
//! scores every cell on consensus accuracy (vs the simulator's gold
//! labels), wage Gini and audit violations, and prints the Pareto
//! table — `*` marks the cells no other cell beats on all three
//! objectives at once. The paper's claim that fairness interventions
//! trade quality for equity becomes a chart instead of an argument.
//!
//! ```sh
//! cargo run --release --example policy_frontier
//! ```

use faircrowd::frontier::{frontier_grid, run_frontier};
use faircrowd::FaircrowdError;

fn main() -> Result<(), FaircrowdError> {
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Three policies × both parity-relevant aggregators × the none vs
    // exposure-parity contrast = 12 points on one hostile market.
    let grid = frontier_grid(
        "scenario=spam_campaign;policy=self_selection,round_robin,kos;\
         aggregator=majority,parity_constrained;enforce=none,parity;seed=0..2",
    )?;
    println!(
        "charting {} frontier points on {jobs} thread(s)…\n",
        grid.expand()?.len() / 2 // two seeds fold into one point per cell
    );
    let result = run_frontier(&grid, jobs)?;
    print!("{}", result.render_table());

    println!("\nPareto-dominant cells (quality ↑, wage-gini ↓, violations ↓):");
    for p in result.frontier() {
        println!(
            "  {} / {} / {} / {}",
            p.scenario, p.policy, p.aggregator, p.enforce
        );
    }

    println!("\n(machine-readable: `faircrowd frontier --format json`)");
    Ok(())
}
