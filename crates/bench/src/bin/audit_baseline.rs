//! Writes the audit perf baseline (`BENCH_audit.json`).
//!
//! Times full seven-axiom audits of the `baseline` catalog scenario at
//! scales 1 / 4 / 16 through the three engine paths — naive reference,
//! indexed serial, indexed parallel — and prints a JSON summary. The
//! repo keeps a checked-in copy at the root so the perf trajectory is
//! tracked in review:
//!
//! ```text
//! cargo run --release --bin audit_baseline > BENCH_audit.json
//! ```
//!
//! Timings are medians over repeated runs on whatever machine executes
//! this; the meaningful numbers are the *speedup ratios*, which are
//! hardware-stable. All three paths return bit-identical reports (the
//! binary asserts it), so the ratios compare equal work.

use faircrowd_core::{AuditConfig, AuditEngine, AxiomId};
use faircrowd_model::trace::Trace;
use faircrowd_sim::{catalog, Simulation};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Median wall-clock milliseconds of `runs` executions of `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let parallel = AuditEngine::with_defaults();
    let serial = AuditEngine::new(AuditConfig {
        parallel: false,
        ..AuditConfig::default()
    });

    let mut rows = String::new();
    for (i, scale) in [1u32, 4, 16].into_iter().enumerate() {
        let config = catalog::get("baseline")
            .expect("baseline is in the catalog")
            .at_scale(f64::from(scale));
        let trace: Trace = Simulation::new(config).run();

        // Equal work or the ratios are meaningless.
        let reference = parallel.run_naive(&trace, &AxiomId::ALL);
        assert_eq!(parallel.run(&trace), reference, "parallel ≠ naive");
        assert_eq!(serial.run(&trace), reference, "serial ≠ naive");

        let runs = match scale {
            1 => 15,
            4 => 9,
            _ => 5,
        };
        let naive_ms = median_ms(runs, || {
            black_box(parallel.run_naive(black_box(&trace), &AxiomId::ALL));
        });
        let serial_ms = median_ms(runs, || {
            black_box(serial.run(black_box(&trace)));
        });
        let parallel_ms = median_ms(runs, || {
            black_box(parallel.run(black_box(&trace)));
        });

        if i > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"scale\": {scale}, \"workers\": {}, \"tasks\": {}, \"events\": {}, \
             \"naive_ms\": {naive_ms:.3}, \"indexed_serial_ms\": {serial_ms:.3}, \
             \"indexed_parallel_ms\": {parallel_ms:.3}, \
             \"speedup_serial\": {:.2}, \"speedup_parallel\": {:.2}}}",
            trace.workers.len(),
            trace.tasks.len(),
            trace.events.len(),
            naive_ms / serial_ms,
            naive_ms / parallel_ms,
        );
    }

    println!(
        "{{\n  \"bench\": \"audit\",\n  \"scenario\": \"baseline\",\n  \"axioms\": 7,\n  \
         \"paths\": [\"naive\", \"indexed_serial\", \"indexed_parallel\"],\n  \
         \"unit\": \"ms (median)\",\n  \"scales\": [\n{rows}\n  ]\n}}"
    );
}
