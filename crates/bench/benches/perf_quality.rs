//! P3 — Truth-inference and detection kernels.
//!
//! Criterion micro-benchmark: majority vote, Dawid–Skene EM, KOS
//! message-passing decoding and the spam detector on a synthetic answer
//! matrix (50 workers × 300 binary tasks, 5 answers per task).

use criterion::{criterion_group, criterion_main, Criterion};
use faircrowd_model::ids::{TaskId, WorkerId};
use faircrowd_quality::answers::AnswerSet;
use faircrowd_quality::dawid_skene::DawidSkene;
use faircrowd_quality::kos;
use faircrowd_quality::majority::majority_vote;
use faircrowd_quality::spam::SpamDetector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synthetic_answers(workers: u32, tasks: u32, per_task: usize, seed: u64) -> AnswerSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = AnswerSet::new(2);
    let mut pool: Vec<u32> = (0..workers).collect();
    for t in 0..tasks {
        let truth: u8 = rng.gen_range(0..2);
        pool.shuffle(&mut rng);
        for &w in pool.iter().take(per_task) {
            // workers 0..80% are 85% accurate, the rest random
            let label = if w < workers * 4 / 5 {
                if rng.gen_bool(0.85) {
                    truth
                } else {
                    1 - truth
                }
            } else {
                rng.gen_range(0..2)
            };
            set.record(WorkerId::new(w), TaskId::new(t), label);
        }
    }
    set
}

fn bench_inference(c: &mut Criterion) {
    let answers = synthetic_answers(50, 300, 5, 11);
    let mut group = c.benchmark_group("truth_inference");
    group.sample_size(10);
    group.bench_function("majority_vote", |b| {
        b.iter(|| black_box(majority_vote(black_box(&answers))))
    });
    group.bench_function("dawid_skene_em", |b| {
        b.iter(|| black_box(DawidSkene::default().run(black_box(&answers))))
    });
    group.bench_function("kos_decode_10iters", |b| {
        b.iter(|| black_box(kos::decode(black_box(&answers), 10)))
    });
    group.bench_function("spam_detector", |b| {
        b.iter(|| black_box(SpamDetector::default().score(black_box(&answers), None)))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
